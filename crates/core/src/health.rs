//! Runtime health monitoring and the graceful-degradation policy.
//!
//! Deployed CIM parts degrade silently: conductances drift, sense
//! margins shrink, and the network keeps emitting labels — increasingly
//! wrong ones. The NeuSpin observation (shared by Spatial-SpinDrop and
//! Scale-Dropout) is that a Bayesian network *tells you* when its
//! hardware is rotting: predictive entropy rises with fault severity.
//! The [`HealthMonitor`] operationalizes that signal:
//!
//! * it tracks rolling per-batch means of **predictive entropy** (from
//!   [`neuspin_bayes::Predictive`]) and **sense margin** (from
//!   [`neuspin_cim::Crossbar::mean_sense_margin`] via
//!   [`crate::HardwareModel::mean_sense_margin`]),
//! * a post-calibration [`HealthMonitor::freeze_baseline`] pins the
//!   healthy reference,
//! * [`HealthMonitor::policy`] compares the rolling window against the
//!   baseline and escalates through [`HealthPolicy`]:
//!   `Healthy → Recalibrate → RemapTier → Abstain`.
//!
//! The monitor is pure bookkeeping — deterministic, no RNG — so the
//! same observation sequence always produces the same policy decisions.

use std::collections::VecDeque;

/// The degradation response ladder, least to most drastic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthPolicy {
    /// Signals within tolerance of the baseline: keep predicting.
    Healthy,
    /// Mild drift: re-run norm calibration (cheap, digital-only).
    Recalibrate,
    /// Serious signal loss: re-run BIST + repair + fault-aware remap
    /// (the full `neuspin_cim` fault-management tier).
    RemapTier,
    /// Uncertainty beyond the calibrated threshold: gate predictions
    /// through [`neuspin_bayes::Predictive::gate`] and abstain rather
    /// than emit garbage.
    Abstain,
}

impl HealthPolicy {
    /// Ladder position as a small integer (`Healthy = 0` … `Abstain =
    /// 3`) — the encoding of the `health_tier` telemetry gauge.
    pub fn tier_index(self) -> u32 {
        match self {
            HealthPolicy::Healthy => 0,
            HealthPolicy::Recalibrate => 1,
            HealthPolicy::RemapTier => 2,
            HealthPolicy::Abstain => 3,
        }
    }

    /// Inverse of [`HealthPolicy::tier_index`]; anything past the
    /// ladder clamps to [`HealthPolicy::Abstain`] (fail safe).
    pub fn from_tier_index(tier: u32) -> Self {
        match tier {
            0 => HealthPolicy::Healthy,
            1 => HealthPolicy::Recalibrate,
            2 => HealthPolicy::RemapTier,
            _ => HealthPolicy::Abstain,
        }
    }
}

impl std::fmt::Display for HealthPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthPolicy::Healthy => "healthy",
            HealthPolicy::Recalibrate => "recalibrate",
            HealthPolicy::RemapTier => "remap-tier",
            HealthPolicy::Abstain => "abstain",
        })
    }
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Batches in the rolling window.
    pub window: usize,
    /// Tolerated relative rise of mean predictive entropy over the
    /// baseline before escalation (doubling it triggers the remap
    /// tier).
    pub entropy_slack: f64,
    /// Tolerated relative loss of mean sense margin (doubling it
    /// triggers the remap tier).
    pub margin_slack: f64,
    /// Absolute rolling-entropy level (nats) beyond which predictions
    /// are abstained. Calibrate with
    /// [`neuspin_bayes::entropy_threshold_for_coverage`] on held-out
    /// data; `f64::INFINITY` disables abstention.
    pub abstain_entropy: f64,
    /// Consecutive observations a raw escalation must persist before
    /// [`HealthMonitor::policy`] latches it (`1` latches immediately).
    /// The [`HealthPolicy::Abstain`] safety tier bypasses the dwell.
    pub dwell: usize,
    /// Exit-band factor in `(0, 1]`: a latched tier only releases once
    /// both signals retreat below `release ×` that tier's entry
    /// threshold. Together with `dwell` this keeps signals hovering at
    /// a slack boundary from re-triggering recovery every window.
    pub release: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            window: 8,
            entropy_slack: 0.25,
            margin_slack: 0.15,
            abstain_entropy: f64::INFINITY,
            dwell: 2,
            release: 0.7,
        }
    }
}

/// The complete mutable state of a [`HealthMonitor`] — observation
/// window, frozen baseline, latched tier, and the hysteresis dwell in
/// progress — captured by [`HealthMonitor::export_state`] for die
/// checkpoints and reapplied by [`HealthMonitor::import_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorState {
    /// The runtime-calibrated abstention threshold (the one
    /// [`HealthConfig`] field that mutates after construction).
    pub abstain_entropy: f64,
    /// Rolling `(entropy, margin)` observations, oldest first.
    pub window: Vec<(f64, f64)>,
    /// The frozen healthy reference, if any.
    pub baseline: Option<(f64, f64)>,
    /// The latched policy tier.
    pub latched: HealthPolicy,
    /// An escalation being dwelled on before it latches.
    pub pending: HealthPolicy,
    pub pending_count: usize,
}

/// Rolling drift detector over (entropy, sense-margin) batch summaries.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    window: VecDeque<(f64, f64)>,
    baseline: Option<(f64, f64)>,
    /// Hysteresis state: the tier [`HealthMonitor::policy`] reports.
    latched: HealthPolicy,
    /// An escalation being dwelled on before it latches.
    pending: HealthPolicy,
    pending_count: usize,
}

impl HealthMonitor {
    /// A monitor with the given tuning and no observations yet.
    ///
    /// # Panics
    ///
    /// Panics if `config.window == 0`, the slacks are not positive and
    /// finite, `config.dwell == 0`, or `config.release` is outside
    /// `(0, 1]`.
    pub fn new(config: HealthConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.entropy_slack > 0.0 && config.entropy_slack.is_finite(),
            "entropy_slack must be positive and finite"
        );
        assert!(
            config.margin_slack > 0.0 && config.margin_slack.is_finite(),
            "margin_slack must be positive and finite"
        );
        assert!(config.dwell > 0, "dwell must be positive");
        assert!(
            config.release > 0.0 && config.release <= 1.0,
            "release must be in (0, 1], got {}",
            config.release
        );
        Self {
            config,
            window: VecDeque::new(),
            baseline: None,
            latched: HealthPolicy::Healthy,
            pending: HealthPolicy::Healthy,
            pending_count: 0,
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Sets the abstention threshold (e.g. after calibrating it on
    /// held-out data).
    pub fn set_abstain_entropy(&mut self, threshold: f64) {
        self.config.abstain_entropy = threshold;
    }

    /// Records one inference batch: its mean predictive entropy and the
    /// hardware's mean sense margin over the same batch.
    ///
    /// # Panics
    ///
    /// Panics if either signal is non-finite or negative.
    pub fn observe(&mut self, mean_entropy: f64, mean_margin: f64) {
        assert!(
            mean_entropy.is_finite() && mean_entropy >= 0.0,
            "entropy must be finite and >= 0, got {mean_entropy}"
        );
        assert!(
            mean_margin.is_finite() && mean_margin >= 0.0,
            "margin must be finite and >= 0, got {mean_margin}"
        );
        if self.window.len() == self.config.window {
            self.window.pop_front();
        }
        self.window.push_back((mean_entropy, mean_margin));
        self.update_latch();
    }

    /// Drops every buffered observation (and any pending escalation
    /// streak) so the next batches start a fresh rolling window — used
    /// after a recovery action invalidates the old signal history. The
    /// latched policy is kept; re-freeze the baseline to reset it.
    pub fn clear_window(&mut self) {
        self.window.clear();
        self.pending = HealthPolicy::Healthy;
        self.pending_count = 0;
    }

    /// Rolling mean predictive entropy (0 before any observation).
    pub fn rolling_entropy(&self) -> f64 {
        self.rolling().0
    }

    /// Rolling mean sense margin (0 before any observation).
    pub fn rolling_margin(&self) -> f64 {
        self.rolling().1
    }

    fn rolling(&self) -> (f64, f64) {
        if self.window.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.window.len() as f64;
        let (se, sm) = self
            .window
            .iter()
            .fold((0.0, 0.0), |(ae, am), &(e, m)| (ae + e, am + m));
        (se / n, sm / n)
    }

    /// Pins the current rolling means as the healthy reference. Call
    /// once after deployment calibration (and again after a successful
    /// repair, which establishes a new normal).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed yet.
    pub fn freeze_baseline(&mut self) {
        assert!(!self.window.is_empty(), "observe at least one batch before freezing");
        self.baseline = Some(self.rolling());
        // A fresh normal: whatever was latched against the old baseline
        // no longer applies.
        self.latched = HealthPolicy::Healthy;
        self.pending = HealthPolicy::Healthy;
        self.pending_count = 0;
    }

    /// The frozen baseline `(entropy, margin)`, if any.
    pub fn baseline(&self) -> Option<(f64, f64)> {
        self.baseline
    }

    /// Relative entropy rise over the baseline (0 when healthy or no
    /// baseline).
    pub fn entropy_rise(&self) -> f64 {
        match self.baseline {
            Some((be, _)) if be > 1e-12 => (self.rolling_entropy() / be - 1.0).max(0.0),
            // Degenerate baseline (zero entropy): any entropy at all
            // is an infinite relative rise; report a large finite one.
            Some(_) if self.rolling_entropy() > 1e-12 => f64::MAX,
            _ => 0.0,
        }
    }

    /// Relative margin loss versus the baseline (0 when healthy or no
    /// baseline).
    pub fn margin_loss(&self) -> f64 {
        match self.baseline {
            Some((_, bm)) if bm > 1e-12 => (1.0 - self.rolling_margin() / bm).max(0.0),
            _ => 0.0,
        }
    }

    /// Whether drift onset is detected (either signal left its slack
    /// band).
    pub fn drift_detected(&self) -> bool {
        self.entropy_rise() > self.config.entropy_slack
            || self.margin_loss() > self.config.margin_slack
    }

    /// The instantaneous (hysteresis-free) tier the rolling signals
    /// warrant right now:
    ///
    /// * rolling entropy above the calibrated absolute threshold →
    ///   [`HealthPolicy::Abstain`];
    /// * either signal at more than twice its slack →
    ///   [`HealthPolicy::RemapTier`];
    /// * either signal beyond its slack → [`HealthPolicy::Recalibrate`];
    /// * otherwise [`HealthPolicy::Healthy`].
    ///
    /// Prefer [`HealthMonitor::policy`] for driving recovery: the raw
    /// tier flaps when a signal hovers at a slack boundary.
    pub fn raw_policy(&self) -> HealthPolicy {
        if self.rolling_entropy() > self.config.abstain_entropy {
            return HealthPolicy::Abstain;
        }
        let e = self.entropy_rise();
        let m = self.margin_loss();
        if e > 2.0 * self.config.entropy_slack || m > 2.0 * self.config.margin_slack {
            HealthPolicy::RemapTier
        } else if e > self.config.entropy_slack || m > self.config.margin_slack {
            HealthPolicy::Recalibrate
        } else {
            HealthPolicy::Healthy
        }
    }

    /// The latched policy decision, with hysteresis:
    ///
    /// * an escalation only takes effect after persisting for
    ///   [`HealthConfig::dwell`] consecutive observations
    ///   ([`HealthPolicy::Abstain`] bypasses the dwell — uncertainty
    ///   past the calibrated threshold is a safety condition);
    /// * a latched tier only releases once both signals retreat below
    ///   [`HealthConfig::release`] `×` its entry threshold, stepping
    ///   down to whatever the raw tier then warrants.
    pub fn policy(&self) -> HealthPolicy {
        self.latched
    }

    /// Re-evaluates the latch after each observation.
    fn update_latch(&mut self) {
        self.update_latch_inner();
        // The telemetry gauge reports the *latched* tier — the one
        // recovery acts on — never the flappy instantaneous score.
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::gauge("health_tier").set(self.latched.tier_index() as f64);
        }
    }

    fn update_latch_inner(&mut self) {
        let raw = self.raw_policy();
        if raw == HealthPolicy::Abstain {
            self.latched = HealthPolicy::Abstain;
            self.pending = HealthPolicy::Healthy;
            self.pending_count = 0;
            return;
        }
        if raw > self.latched {
            // Extend the escalation streak; a streak that keeps rising
            // (Recalibrate then RemapTier) dwells as one streak at the
            // highest tier seen.
            if self.pending > self.latched && raw >= self.pending {
                self.pending = raw;
                self.pending_count += 1;
            } else {
                self.pending = raw;
                self.pending_count = 1;
            }
            if self.pending_count >= self.config.dwell {
                self.latched = self.pending;
                self.pending = HealthPolicy::Healthy;
                self.pending_count = 0;
            }
            return;
        }
        // At or below the latched tier: the streak is broken.
        self.pending = HealthPolicy::Healthy;
        self.pending_count = 0;
        if raw < self.latched && self.exit_band_cleared() {
            self.latched = raw;
        }
    }

    /// Captures the full mutable state of the monitor for a die
    /// checkpoint (see [`MonitorState`]).
    pub fn export_state(&self) -> MonitorState {
        MonitorState {
            abstain_entropy: self.config.abstain_entropy,
            window: self.window.iter().copied().collect(),
            baseline: self.baseline,
            latched: self.latched,
            pending: self.pending,
            pending_count: self.pending_count,
        }
    }

    /// Reapplies a captured state onto a monitor built with the same
    /// [`HealthConfig`] (the immutable tuning is not captured — only
    /// the runtime-calibrated `abstain_entropy` travels with the
    /// state). After the call the same observation sequence produces
    /// the same latched decisions as the source monitor.
    ///
    /// # Panics
    ///
    /// Panics if the captured window is longer than this monitor's
    /// configured window.
    pub fn import_state(&mut self, state: &MonitorState) {
        assert!(
            state.window.len() <= self.config.window,
            "monitor window state ({}) exceeds configured window ({})",
            state.window.len(),
            self.config.window
        );
        self.config.abstain_entropy = state.abstain_entropy;
        self.window = state.window.iter().copied().collect();
        self.baseline = state.baseline;
        self.latched = state.latched;
        self.pending = state.pending;
        self.pending_count = state.pending_count;
    }

    /// Whether both signals have retreated *strictly* below `release ×`
    /// the entry threshold of the currently latched tier. A signal
    /// sitting exactly on the band holds the latch — hysteresis must
    /// never toggle on a boundary value.
    fn exit_band_cleared(&self) -> bool {
        let r = self.config.release;
        let e = self.entropy_rise();
        let m = self.margin_loss();
        match self.latched {
            HealthPolicy::Healthy => true,
            HealthPolicy::Recalibrate => {
                e < r * self.config.entropy_slack && m < r * self.config.margin_slack
            }
            HealthPolicy::RemapTier => {
                e < r * 2.0 * self.config.entropy_slack
                    && m < r * 2.0 * self.config.margin_slack
            }
            HealthPolicy::Abstain => self.rolling_entropy() < r * self.config.abstain_entropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig { window: 4, ..HealthConfig::default() })
    }

    #[test]
    fn healthy_until_baseline_deviates() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        assert_eq!(m.policy(), HealthPolicy::Healthy);
        assert!(!m.drift_detected());
        // Small wiggles stay healthy.
        m.observe(0.55, 9.8);
        assert_eq!(m.policy(), HealthPolicy::Healthy);
    }

    #[test]
    fn entropy_rise_escalates_to_recalibrate_then_remap() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        // Rolling mean drifts up past 25 % → recalibrate.
        for _ in 0..4 {
            m.observe(0.7, 10.0);
        }
        assert!(m.drift_detected());
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        // Past 50 % → remap tier.
        for _ in 0..4 {
            m.observe(0.9, 10.0);
        }
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
    }

    #[test]
    fn margin_collapse_triggers_remap_tier() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        for _ in 0..4 {
            m.observe(0.5, 5.0); // 50 % margin loss > 2 × 15 %
        }
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
    }

    #[test]
    fn absolute_entropy_threshold_wins() {
        let mut m = HealthMonitor::new(HealthConfig {
            window: 2,
            abstain_entropy: 1.0,
            ..HealthConfig::default()
        });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(1.4, 10.0);
        m.observe(1.4, 10.0);
        assert_eq!(m.policy(), HealthPolicy::Abstain);
    }

    #[test]
    fn rolling_window_forgets_old_batches() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(1.0, 10.0);
        }
        assert!((m.rolling_entropy() - 1.0).abs() < 1e-12);
        for _ in 0..4 {
            m.observe(0.2, 10.0);
        }
        assert!((m.rolling_entropy() - 0.2).abs() < 1e-12, "window fully turned over");
    }

    #[test]
    fn exactly_at_slack_stays_healthy() {
        // Escalation comparisons are strict: a rise of exactly the
        // slack is still within tolerance.
        let mut m = HealthMonitor::new(HealthConfig { window: 1, ..HealthConfig::default() });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.5 * 1.25, 10.0); // rise == entropy_slack exactly
        assert!((m.entropy_rise() - 0.25).abs() < 1e-12);
        assert_eq!(m.raw_policy(), HealthPolicy::Healthy);
        assert!(!m.drift_detected());
    }

    #[test]
    fn exactly_at_twice_slack_is_recalibrate_not_remap() {
        let mut m = HealthMonitor::new(HealthConfig {
            window: 1,
            dwell: 1,
            ..HealthConfig::default()
        });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.5 * 1.5, 10.0); // rise == 2 × entropy_slack exactly
        assert!((m.entropy_rise() - 0.5).abs() < 1e-12);
        assert_eq!(m.raw_policy(), HealthPolicy::Recalibrate);
        assert_eq!(m.policy(), HealthPolicy::Recalibrate, "dwell 1 latches at once");
    }

    #[test]
    fn abstain_crossing_works_without_frozen_baseline() {
        // The absolute uncertainty threshold needs no baseline, and
        // bypasses the dwell: one bad batch is enough.
        let mut m = HealthMonitor::new(HealthConfig {
            window: 4,
            abstain_entropy: 1.0,
            ..HealthConfig::default()
        });
        m.observe(0.3, 10.0);
        assert_eq!(m.policy(), HealthPolicy::Healthy);
        m.observe(5.0, 10.0); // rolling (0.3 + 5.0) / 2 = 2.65 > 1.0
        assert!(m.baseline().is_none());
        assert_eq!(m.raw_policy(), HealthPolicy::Abstain);
        assert_eq!(m.policy(), HealthPolicy::Abstain);
    }

    #[test]
    fn dwell_filters_single_batch_spikes() {
        let mut m = HealthMonitor::new(HealthConfig { window: 1, ..HealthConfig::default() });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.8, 10.0); // rise 0.6: raw wants RemapTier
        assert_eq!(m.raw_policy(), HealthPolicy::RemapTier);
        assert_eq!(m.policy(), HealthPolicy::Healthy, "one spike must not latch");
        m.observe(0.5, 10.0); // back to normal before the dwell elapses
        assert_eq!(m.policy(), HealthPolicy::Healthy);
        // A persistent rise does latch after `dwell` observations.
        m.observe(0.8, 10.0);
        m.observe(0.8, 10.0);
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
    }

    #[test]
    fn boundary_hover_does_not_flap() {
        // A signal oscillating around the slack boundary used to
        // re-trigger Recalibrate every window; the exit band keeps the
        // tier latched until the signal genuinely retreats.
        let mut m = HealthMonitor::new(HealthConfig { window: 1, ..HealthConfig::default() });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.64, 10.0); // rise 0.28 > slack
        m.observe(0.64, 10.0); // dwell met → latch Recalibrate
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        for _ in 0..5 {
            m.observe(0.62, 10.0); // rise 0.24: raw Healthy, inside exit band
            assert_eq!(m.raw_policy(), HealthPolicy::Healthy);
            assert_eq!(m.policy(), HealthPolicy::Recalibrate, "must hold through hover");
            m.observe(0.64, 10.0);
            assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        }
        // rise 0.1 < release × slack = 0.175 → genuinely recovered.
        m.observe(0.55, 10.0);
        assert_eq!(m.policy(), HealthPolicy::Healthy);
    }

    #[test]
    fn remap_tier_releases_stepwise_through_recalibrate() {
        let mut m = HealthMonitor::new(HealthConfig { window: 1, ..HealthConfig::default() });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.9, 10.0);
        m.observe(0.9, 10.0); // rise 0.8 → RemapTier latched
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
        // rise 0.4: raw Recalibrate, but above the remap exit band
        // (0.7 × 0.5 = 0.35) → still remap tier.
        m.observe(0.7, 10.0);
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
        // rise 0.3 < 0.35: exit band cleared, step down to the raw tier.
        m.observe(0.65, 10.0);
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
    }

    #[test]
    fn exactly_on_release_band_holds_the_latch() {
        // The exit band is strict: a signal sitting *exactly* on
        // release × slack must not toggle the tier. All values below
        // are exact in binary floating point, so the comparison really
        // is `0.125 < 0.125`.
        let mut m = HealthMonitor::new(HealthConfig {
            window: 1,
            entropy_slack: 0.25,
            release: 0.5, // band = 0.5 × 0.25 = 0.125
            ..HealthConfig::default()
        });
        m.observe(1.0, 10.0);
        m.freeze_baseline();
        m.observe(1.5, 10.0);
        m.observe(1.5, 10.0); // rise 0.5 > slack, dwell met → Recalibrate
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        for _ in 0..4 {
            m.observe(1.125, 10.0); // rise exactly 0.125 = the band
            assert_eq!(m.raw_policy(), HealthPolicy::Healthy);
            assert_eq!(
                m.policy(),
                HealthPolicy::Recalibrate,
                "boundary value must hold the latch, not release it"
            );
        }
        m.observe(1.0, 10.0); // rise 0 < band → genuine recovery
        assert_eq!(m.policy(), HealthPolicy::Healthy);
    }

    #[test]
    fn telemetry_gauge_tracks_latched_tier_not_raw_score() {
        let _guard = crate::telemetry::test_lock();
        crate::telemetry::reset();
        crate::telemetry::set_enabled(true, false);
        let gauge = crate::telemetry::gauge("health_tier");

        let mut m = HealthMonitor::new(HealthConfig { window: 1, ..HealthConfig::default() });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.64, 10.0); // raw Recalibrate, still dwelling
        assert_eq!(m.raw_policy(), HealthPolicy::Recalibrate);
        assert_eq!(gauge.get(), 0.0, "dwelling escalation must not move the gauge");
        m.observe(0.64, 10.0); // dwell met → latch
        assert_eq!(gauge.get(), 1.0);
        // Raw drops back inside the exit band's hover zone: the latch
        // (and the gauge) must hold, not track the instantaneous score.
        m.observe(0.62, 10.0);
        assert_eq!(m.raw_policy(), HealthPolicy::Healthy);
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        assert_eq!(gauge.get(), 1.0, "gauge must reflect the latched tier");
        m.observe(0.55, 10.0); // genuine recovery
        assert_eq!(gauge.get(), 0.0);

        crate::telemetry::set_enabled(false, false);
        crate::telemetry::reset();
    }

    #[test]
    fn freeze_baseline_resets_the_latch() {
        let mut m = HealthMonitor::new(HealthConfig {
            window: 1,
            dwell: 1,
            ..HealthConfig::default()
        });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(0.9, 10.0);
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
        // After a successful repair the host re-baselines at the new
        // normal; the stale latch must not survive it.
        m.freeze_baseline();
        assert_eq!(m.policy(), HealthPolicy::Healthy);
    }

    #[test]
    fn clear_window_drops_history_but_keeps_latch() {
        let mut m = HealthMonitor::new(HealthConfig {
            window: 2,
            dwell: 1,
            ..HealthConfig::default()
        });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(1.2, 10.0); // rolling 0.85, rise 0.7 → remap tier
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
        m.clear_window();
        assert_eq!(m.rolling_entropy(), 0.0);
        assert_eq!(m.policy(), HealthPolicy::RemapTier, "latch persists until re-baseline");
    }

    #[test]
    fn monitor_state_round_trip_preserves_latch_and_dwell() {
        let config = HealthConfig { window: 1, ..HealthConfig::default() };
        let mut a = HealthMonitor::new(config);
        a.observe(0.5, 10.0);
        a.freeze_baseline();
        a.set_abstain_entropy(2.0);
        a.observe(0.9, 10.0); // rise 0.8: raw RemapTier, mid-dwell
        assert_eq!(a.policy(), HealthPolicy::Healthy, "still dwelling");

        let mut b = HealthMonitor::new(config);
        b.import_state(&a.export_state());
        assert_eq!(b.export_state(), a.export_state(), "re-export must reproduce the state");
        assert_eq!(b.config().abstain_entropy, 2.0, "calibrated threshold travels");

        // The in-flight dwell streak resumes: one more bad batch
        // latches on both, and further recovery releases identically.
        a.observe(0.9, 10.0);
        b.observe(0.9, 10.0);
        assert_eq!(a.policy(), HealthPolicy::RemapTier);
        assert_eq!(b.policy(), HealthPolicy::RemapTier);
        a.observe(0.5, 10.0);
        b.observe(0.5, 10.0);
        assert_eq!(a.policy(), b.policy(), "release path must match too");
    }

    #[test]
    #[should_panic(expected = "exceeds configured window")]
    fn monitor_import_rejects_oversized_window() {
        let mut a = HealthMonitor::new(HealthConfig { window: 4, ..HealthConfig::default() });
        for _ in 0..4 {
            a.observe(0.5, 10.0);
        }
        let mut b = HealthMonitor::new(HealthConfig { window: 2, ..HealthConfig::default() });
        b.import_state(&a.export_state());
    }

    #[test]
    #[should_panic(expected = "dwell must be positive")]
    fn zero_dwell_rejected() {
        let _ = HealthMonitor::new(HealthConfig { dwell: 0, ..HealthConfig::default() });
    }

    #[test]
    #[should_panic(expected = "release must be in (0, 1]")]
    fn out_of_range_release_rejected() {
        let _ = HealthMonitor::new(HealthConfig { release: 1.5, ..HealthConfig::default() });
    }

    #[test]
    fn policies_are_ordered() {
        assert!(HealthPolicy::Healthy < HealthPolicy::Recalibrate);
        assert!(HealthPolicy::Recalibrate < HealthPolicy::RemapTier);
        assert!(HealthPolicy::RemapTier < HealthPolicy::Abstain);
    }

    #[test]
    #[should_panic(expected = "observe at least one batch")]
    fn freeze_needs_observations() {
        monitor().freeze_baseline();
    }

    #[test]
    #[should_panic(expected = "entropy must be finite")]
    fn observe_rejects_nan() {
        monitor().observe(f64::NAN, 1.0);
    }
}
