//! Runtime health monitoring and the graceful-degradation policy.
//!
//! Deployed CIM parts degrade silently: conductances drift, sense
//! margins shrink, and the network keeps emitting labels — increasingly
//! wrong ones. The NeuSpin observation (shared by Spatial-SpinDrop and
//! Scale-Dropout) is that a Bayesian network *tells you* when its
//! hardware is rotting: predictive entropy rises with fault severity.
//! The [`HealthMonitor`] operationalizes that signal:
//!
//! * it tracks rolling per-batch means of **predictive entropy** (from
//!   [`neuspin_bayes::Predictive`]) and **sense margin** (from
//!   [`neuspin_cim::Crossbar::mean_sense_margin`] via
//!   [`crate::HardwareModel::mean_sense_margin`]),
//! * a post-calibration [`HealthMonitor::freeze_baseline`] pins the
//!   healthy reference,
//! * [`HealthMonitor::policy`] compares the rolling window against the
//!   baseline and escalates through [`HealthPolicy`]:
//!   `Healthy → Recalibrate → RemapTier → Abstain`.
//!
//! The monitor is pure bookkeeping — deterministic, no RNG — so the
//! same observation sequence always produces the same policy decisions.

use std::collections::VecDeque;

/// The degradation response ladder, least to most drastic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthPolicy {
    /// Signals within tolerance of the baseline: keep predicting.
    Healthy,
    /// Mild drift: re-run norm calibration (cheap, digital-only).
    Recalibrate,
    /// Serious signal loss: re-run BIST + repair + fault-aware remap
    /// (the full `neuspin_cim` fault-management tier).
    RemapTier,
    /// Uncertainty beyond the calibrated threshold: gate predictions
    /// through [`neuspin_bayes::Predictive::gate`] and abstain rather
    /// than emit garbage.
    Abstain,
}

impl std::fmt::Display for HealthPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthPolicy::Healthy => "healthy",
            HealthPolicy::Recalibrate => "recalibrate",
            HealthPolicy::RemapTier => "remap-tier",
            HealthPolicy::Abstain => "abstain",
        })
    }
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Batches in the rolling window.
    pub window: usize,
    /// Tolerated relative rise of mean predictive entropy over the
    /// baseline before escalation (doubling it triggers the remap
    /// tier).
    pub entropy_slack: f64,
    /// Tolerated relative loss of mean sense margin (doubling it
    /// triggers the remap tier).
    pub margin_slack: f64,
    /// Absolute rolling-entropy level (nats) beyond which predictions
    /// are abstained. Calibrate with
    /// [`neuspin_bayes::entropy_threshold_for_coverage`] on held-out
    /// data; `f64::INFINITY` disables abstention.
    pub abstain_entropy: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self { window: 8, entropy_slack: 0.25, margin_slack: 0.15, abstain_entropy: f64::INFINITY }
    }
}

/// Rolling drift detector over (entropy, sense-margin) batch summaries.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    window: VecDeque<(f64, f64)>,
    baseline: Option<(f64, f64)>,
}

impl HealthMonitor {
    /// A monitor with the given tuning and no observations yet.
    ///
    /// # Panics
    ///
    /// Panics if `config.window == 0` or the slacks are not positive
    /// and finite.
    pub fn new(config: HealthConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.entropy_slack > 0.0 && config.entropy_slack.is_finite(),
            "entropy_slack must be positive and finite"
        );
        assert!(
            config.margin_slack > 0.0 && config.margin_slack.is_finite(),
            "margin_slack must be positive and finite"
        );
        Self { config, window: VecDeque::new(), baseline: None }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Sets the abstention threshold (e.g. after calibrating it on
    /// held-out data).
    pub fn set_abstain_entropy(&mut self, threshold: f64) {
        self.config.abstain_entropy = threshold;
    }

    /// Records one inference batch: its mean predictive entropy and the
    /// hardware's mean sense margin over the same batch.
    ///
    /// # Panics
    ///
    /// Panics if either signal is non-finite or negative.
    pub fn observe(&mut self, mean_entropy: f64, mean_margin: f64) {
        assert!(
            mean_entropy.is_finite() && mean_entropy >= 0.0,
            "entropy must be finite and >= 0, got {mean_entropy}"
        );
        assert!(
            mean_margin.is_finite() && mean_margin >= 0.0,
            "margin must be finite and >= 0, got {mean_margin}"
        );
        if self.window.len() == self.config.window {
            self.window.pop_front();
        }
        self.window.push_back((mean_entropy, mean_margin));
    }

    /// Rolling mean predictive entropy (0 before any observation).
    pub fn rolling_entropy(&self) -> f64 {
        self.rolling().0
    }

    /// Rolling mean sense margin (0 before any observation).
    pub fn rolling_margin(&self) -> f64 {
        self.rolling().1
    }

    fn rolling(&self) -> (f64, f64) {
        if self.window.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.window.len() as f64;
        let (se, sm) = self
            .window
            .iter()
            .fold((0.0, 0.0), |(ae, am), &(e, m)| (ae + e, am + m));
        (se / n, sm / n)
    }

    /// Pins the current rolling means as the healthy reference. Call
    /// once after deployment calibration (and again after a successful
    /// repair, which establishes a new normal).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed yet.
    pub fn freeze_baseline(&mut self) {
        assert!(!self.window.is_empty(), "observe at least one batch before freezing");
        self.baseline = Some(self.rolling());
    }

    /// The frozen baseline `(entropy, margin)`, if any.
    pub fn baseline(&self) -> Option<(f64, f64)> {
        self.baseline
    }

    /// Relative entropy rise over the baseline (0 when healthy or no
    /// baseline).
    pub fn entropy_rise(&self) -> f64 {
        match self.baseline {
            Some((be, _)) if be > 1e-12 => (self.rolling_entropy() / be - 1.0).max(0.0),
            // Degenerate baseline (zero entropy): any entropy at all
            // is an infinite relative rise; report a large finite one.
            Some(_) if self.rolling_entropy() > 1e-12 => f64::MAX,
            _ => 0.0,
        }
    }

    /// Relative margin loss versus the baseline (0 when healthy or no
    /// baseline).
    pub fn margin_loss(&self) -> f64 {
        match self.baseline {
            Some((_, bm)) if bm > 1e-12 => (1.0 - self.rolling_margin() / bm).max(0.0),
            _ => 0.0,
        }
    }

    /// Whether drift onset is detected (either signal left its slack
    /// band).
    pub fn drift_detected(&self) -> bool {
        self.entropy_rise() > self.config.entropy_slack
            || self.margin_loss() > self.config.margin_slack
    }

    /// The current policy decision: the most drastic response any
    /// signal warrants.
    ///
    /// * rolling entropy above the calibrated absolute threshold →
    ///   [`HealthPolicy::Abstain`];
    /// * either signal at more than twice its slack →
    ///   [`HealthPolicy::RemapTier`];
    /// * either signal beyond its slack → [`HealthPolicy::Recalibrate`];
    /// * otherwise [`HealthPolicy::Healthy`].
    pub fn policy(&self) -> HealthPolicy {
        if self.rolling_entropy() > self.config.abstain_entropy {
            return HealthPolicy::Abstain;
        }
        let e = self.entropy_rise();
        let m = self.margin_loss();
        if e > 2.0 * self.config.entropy_slack || m > 2.0 * self.config.margin_slack {
            HealthPolicy::RemapTier
        } else if e > self.config.entropy_slack || m > self.config.margin_slack {
            HealthPolicy::Recalibrate
        } else {
            HealthPolicy::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig { window: 4, ..HealthConfig::default() })
    }

    #[test]
    fn healthy_until_baseline_deviates() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        assert_eq!(m.policy(), HealthPolicy::Healthy);
        assert!(!m.drift_detected());
        // Small wiggles stay healthy.
        m.observe(0.55, 9.8);
        assert_eq!(m.policy(), HealthPolicy::Healthy);
    }

    #[test]
    fn entropy_rise_escalates_to_recalibrate_then_remap() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        // Rolling mean drifts up past 25 % → recalibrate.
        for _ in 0..4 {
            m.observe(0.7, 10.0);
        }
        assert!(m.drift_detected());
        assert_eq!(m.policy(), HealthPolicy::Recalibrate);
        // Past 50 % → remap tier.
        for _ in 0..4 {
            m.observe(0.9, 10.0);
        }
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
    }

    #[test]
    fn margin_collapse_triggers_remap_tier() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(0.5, 10.0);
        }
        m.freeze_baseline();
        for _ in 0..4 {
            m.observe(0.5, 5.0); // 50 % margin loss > 2 × 15 %
        }
        assert_eq!(m.policy(), HealthPolicy::RemapTier);
    }

    #[test]
    fn absolute_entropy_threshold_wins() {
        let mut m = HealthMonitor::new(HealthConfig {
            window: 2,
            abstain_entropy: 1.0,
            ..HealthConfig::default()
        });
        m.observe(0.5, 10.0);
        m.freeze_baseline();
        m.observe(1.4, 10.0);
        m.observe(1.4, 10.0);
        assert_eq!(m.policy(), HealthPolicy::Abstain);
    }

    #[test]
    fn rolling_window_forgets_old_batches() {
        let mut m = monitor();
        for _ in 0..4 {
            m.observe(1.0, 10.0);
        }
        assert!((m.rolling_entropy() - 1.0).abs() < 1e-12);
        for _ in 0..4 {
            m.observe(0.2, 10.0);
        }
        assert!((m.rolling_entropy() - 0.2).abs() < 1e-12, "window fully turned over");
    }

    #[test]
    fn policies_are_ordered() {
        assert!(HealthPolicy::Healthy < HealthPolicy::Recalibrate);
        assert!(HealthPolicy::Recalibrate < HealthPolicy::RemapTier);
        assert!(HealthPolicy::RemapTier < HealthPolicy::Abstain);
    }

    #[test]
    #[should_panic(expected = "observe at least one batch")]
    fn freeze_needs_observations() {
        monitor().freeze_baseline();
    }

    #[test]
    #[should_panic(expected = "entropy must be finite")]
    fn observe_rejects_nan() {
        monitor().observe(f64::NAN, 1.0);
    }
}
