//! Shared unit-test fixtures (compiled only under `cfg(test)`).

use crate::model::{HardwareConfig, HardwareModel};
use crate::runtime::{Supervisor, SupervisorConfig};
use neuspin_nn::Tensor;
use neuspin_bayes::{build_cnn, ArchConfig, Method};
use neuspin_cim::CrossbarConfig;
use neuspin_device::AgingConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The small architecture every serve-layer test runs on: 8×8 inputs,
/// four classes — big enough to exercise the full pipeline, small
/// enough to commission dozens of dies per test run.
pub fn small_arch() -> ArchConfig {
    ArchConfig { c1: 2, c2: 4, hidden: 16, classes: 4, side: 8, ..ArchConfig::default() }
}

/// A deterministic evaluation batch shaped for [`small_arch`].
pub fn small_inputs(n: usize, tag: u64) -> Tensor {
    Tensor::from_fn(&[n, 1, 8, 8], |i| {
        (((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(tag * 131) % 97) as f32 / 97.0) - 0.5
    })
}

/// A commissioned single-die supervisor on ideal hardware with aging
/// enabled (drift only, deterministic) — the building block for fleet
/// and server tests. Distinct `seed`s give distinct (but individually
/// reproducible) dies.
pub fn small_commissioned_supervisor(seed: u64) -> Supervisor {
    let arch = small_arch();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = build_cnn(Method::SpinDrop, &arch, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig::ideal(),
        passes: 3,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &arch, &config, &mut rng);
    hw.enable_aging(&AgingConfig { seed: seed ^ 0xA9, ..AgingConfig::default() });
    let mut sup = Supervisor::new(hw, SupervisorConfig { seed, ..SupervisorConfig::default() });
    let calib = small_inputs(8, seed);
    let monitor_batch = small_inputs(4, seed.wrapping_add(1));
    sup.commission(calib, &monitor_batch);
    sup
}
