//! Hand-rolled JSON: a value tree, a writer, a small parser, and the
//! [`ToJson`] trait the bench binaries serialize their reports through.
//!
//! This replaces the `serde`/`serde_json` derives the workspace used to
//! pull from crates.io. The surface is deliberately tiny — the only
//! JSON this workspace produces is flat experiment-report structs — and
//! the writer enforces one invariant serde does not: **non-finite
//! floats are a hard error**, because a `NaN` in a results file means a
//! broken experiment, not a value to be silently passed along.
//!
//! Struct impls are one line via [`impl_to_json!`](crate::impl_to_json):
//!
//! ```
//! use neuspin_core::{impl_to_json, json::ToJson};
//!
//! struct Row { name: String, accuracy: f64 }
//! impl_to_json!(Row { name, accuracy });
//!
//! let json = Row { name: "spindrop".into(), accuracy: 0.91 }.to_json().to_string();
//! assert_eq!(json, r#"{"name":"spindrop","accuracy":0.91}"#);
//! ```

use std::fmt::Write as _;

/// A JSON value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// output of a report is stable, diffable, and ordered the way the
/// struct declares its fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent), mirroring what
    /// `serde_json::to_string_pretty` produced for the results files.
    /// Compact (no-whitespace) serialization is `to_string()`, provided
    /// by the [`std::fmt::Display`] impl below.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains a non-finite number — results files
    /// must never carry `NaN`/`Inf` (which raw JSON cannot represent
    /// anyway).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, "[", "]", items, |out, item, ind, d| {
                item.write(out, ind, d);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, "{", "}", pairs, |out, (k, v), ind, d| {
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                v.write(out, ind, d);
            }),
        }
    }
}

/// Compact serialization (no whitespace); also the source of
/// `Json::to_string()`. Panics on non-finite numbers like
/// [`Json::to_string_pretty`].
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: &str,
    close: &str,
    items: &[T],
    mut write_item: impl FnMut(&mut String, &T, Option<usize>, usize),
) {
    out.push_str(open);
    if items.is_empty() {
        out.push_str(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push_str(close);
}

/// The no-NaN/no-Inf guard: every float that reaches a results file
/// goes through here.
fn write_number(out: &mut String, x: f64) {
    assert!(
        x.is_finite(),
        "refusing to serialize non-finite number {x}: a NaN/Inf in a results file is a broken experiment"
    );
    // Rust's shortest-roundtrip Display is valid JSON for finite floats
    // (integral values print without an exponent or trailing ".0").
    let _ = write!(out, "{x}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error, with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (used by the round-trip tests and any tool
/// that wants to read the results files back).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

/// Conversion into a [`Json`] tree — the replacement for
/// `serde::Serialize` across the workspace.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    /// Serialized as a two-element array, as serde did.
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

// --- impls for report-adjacent types from the dependency crates ---

impl ToJson for neuspin_energy::Joules {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl ToJson for neuspin_bayes::Method {
    /// Serialized as the variant name (`"SpinDrop"`), matching what the
    /// serde derive emitted for a unit-variant enum.
    fn to_json(&self) -> Json {
        Json::Str(format!("{self:?}"))
    }
}

crate::impl_to_json!(neuspin_cim::OpCounter {
    cell_reads,
    cell_writes,
    sa_evals,
    adc_converts,
    adc_saturations,
    rng_bits,
    sram_accesses,
    digital_ops,
});

/// Implements [`ToJson`] for a struct with named fields, keyed by the
/// field names in declaration order — the drop-in replacement for
/// `#[derive(Serialize)]`.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(true.to_json().to_string(), "true");
        assert_eq!(3.0f64.to_json().to_string(), "3");
        assert_eq!(0.25f64.to_json().to_string(), "0.25");
        assert_eq!(2e-6.to_json().to_string(), "0.000002");
        assert_eq!("hi".to_json().to_string(), "\"hi\"");
        assert_eq!(42u64.to_json().to_string(), "42");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\nd".to_json().to_string(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().to_string(), r#""\u0001""#);
    }

    #[test]
    fn short_form_escapes_for_backspace_and_formfeed() {
        assert_eq!("\u{8}\u{c}".to_json().to_string(), r#""\b\f""#);
    }

    #[test]
    fn control_chars_round_trip() {
        // Every control character below 0x20 must survive
        // serialize → parse unchanged (telemetry span annotations and
        // trace fields flow through this path).
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let original = format!("a{c}z");
            let encoded = original.to_json().to_string();
            assert!(
                encoded.bytes().all(|b| (0x20..0x80).contains(&b)),
                "U+{code:04X} must be escaped, got {encoded:?}"
            );
            match parse(&encoded) {
                Ok(Json::Str(s)) => assert_eq!(s, original, "U+{code:04X}"),
                other => panic!("U+{code:04X}: expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::obj([
            ("xs", vec![1.0, 2.0].to_json()),
            ("pair", ("a", 1u32).to_json()),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.to_string(), r#"{"xs":[1,2],"pair":["a",1],"empty":[]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("a", 1u8.to_json()), ("b", Json::Arr(vec![Json::Bool(true)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_is_rejected() {
        let _ = Json::Num(f64::NAN).to_string();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn inf_is_rejected_in_nested_position() {
        let _ = Json::obj([("x", Json::Num(f64::INFINITY))]).to_string_pretty();
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = Json::obj([
            ("label", "series \"A\"\n".to_json()),
            ("x", vec![0.0, 0.5, 1e-9, -3.25].to_json()),
            ("flag", Json::Bool(false)),
            ("missing", Json::Null),
            ("n", 123456u64.to_json()),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_accepts_standard_document() {
        let doc = r#" { "a" : [ 1 , 2.5e3 , -4 ] , "b" : { } , "c" : "A\t" } "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().at(1).unwrap().as_f64(), Some(2500.0));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("c").unwrap().as_str(), Some("A\t"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn macro_generates_field_order() {
        struct Demo {
            b: f64,
            a: u32,
        }
        impl_to_json!(Demo { b, a });
        let json = Demo { b: 0.5, a: 7 }.to_json().to_string();
        assert_eq!(json, r#"{"b":0.5,"a":7}"#);
    }

    #[test]
    fn option_maps_to_null() {
        let some: Option<f64> = Some(1.5);
        let none: Option<f64> = None;
        assert_eq!(some.to_json().to_string(), "1.5");
        assert_eq!(none.to_json().to_string(), "null");
    }

    #[test]
    fn op_counter_serializes_all_fields() {
        let c = neuspin_cim::OpCounter::new();
        let v = c.to_json();
        for key in ["cell_reads", "cell_writes", "sa_evals", "adc_converts", "rng_bits"] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
    }
}
