//! Typed, serializable experiment reports.
//!
//! Every bench binary emits one of these as JSON next to its
//! human-readable table, so EXPERIMENTS.md numbers are regenerable and
//! machine-checkable.

use neuspin_bayes::Method;
use neuspin_cim::OpCounter;
use neuspin_energy::Joules;
use serde::{Deserialize, Serialize};

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The method.
    pub method: Method,
    /// Software (algorithm-only) MC accuracy.
    pub software_accuracy: f64,
    /// Hardware-in-the-loop MC accuracy.
    pub hardware_accuracy: f64,
    /// Simulated per-image energy on the trained CNN.
    pub simulated_energy_per_image: Joules,
    /// Analytic per-image energy on the paper-scale reference network.
    pub reference_energy_per_image: Joules,
    /// Paper value (µJ/image) for side-by-side display, if reported.
    pub paper_energy_uj: Option<f64>,
    /// Paper accuracy (%) for side-by-side display, if reported.
    pub paper_accuracy_pct: Option<f64>,
    /// Op counts of the simulated prediction window.
    pub counter: OpCounter,
}

/// An OOD-detection experiment result for one (method, probe) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OodResult {
    /// The method.
    pub method: Method,
    /// Detection rate at the 95 %-TPR threshold.
    pub detection_rate: f64,
    /// AUROC of the uncertainty score.
    pub auroc: f64,
    /// Mean entropy on in-distribution data.
    pub id_entropy: f64,
    /// Mean entropy on the OOD probe.
    pub ood_entropy: f64,
}

/// A corrupted-data experiment result for one severity level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionResult {
    /// Corruption severity (1–5).
    pub severity: u8,
    /// Deterministic-baseline accuracy.
    pub baseline_accuracy: f64,
    /// Bayesian (MC) accuracy.
    pub bayesian_accuracy: f64,
}

/// A generic named scalar series (for figure-style outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label.
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series lengths differ");
        Self { label: label.into(), x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrips_through_json() {
        let s = Series::new("accuracy", vec![0.0, 0.1], vec![0.9, 0.8]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn series_rejects_mismatch() {
        let _ = Series::new("x", vec![1.0], vec![]);
    }

    #[test]
    fn table1_row_serializes() {
        let row = Table1Row {
            method: Method::SpinDrop,
            software_accuracy: 0.91,
            hardware_accuracy: 0.9,
            simulated_energy_per_image: Joules(2e-6),
            reference_energy_per_image: Joules(2.1e-6),
            paper_energy_uj: Some(2.0),
            paper_accuracy_pct: Some(91.95),
            counter: OpCounter::new(),
        };
        let json = serde_json::to_string_pretty(&row).unwrap();
        assert!(json.contains("SpinDrop"));
    }
}
