//! Typed, serializable experiment reports.
//!
//! Every bench binary emits one of these as JSON next to its
//! human-readable table, so EXPERIMENTS.md numbers are regenerable and
//! machine-checkable.

use neuspin_bayes::Method;
use neuspin_cim::OpCounter;
use neuspin_energy::Joules;

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The method.
    pub method: Method,
    /// Software (algorithm-only) MC accuracy.
    pub software_accuracy: f64,
    /// Hardware-in-the-loop MC accuracy.
    pub hardware_accuracy: f64,
    /// Simulated per-image energy on the trained CNN.
    pub simulated_energy_per_image: Joules,
    /// Analytic per-image energy on the paper-scale reference network.
    pub reference_energy_per_image: Joules,
    /// Paper value (µJ/image) for side-by-side display, if reported.
    pub paper_energy_uj: Option<f64>,
    /// Paper accuracy (%) for side-by-side display, if reported.
    pub paper_accuracy_pct: Option<f64>,
    /// Op counts of the simulated prediction window.
    pub counter: OpCounter,
}

/// An OOD-detection experiment result for one (method, probe) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OodResult {
    /// The method.
    pub method: Method,
    /// Detection rate at the 95 %-TPR threshold.
    pub detection_rate: f64,
    /// AUROC of the uncertainty score.
    pub auroc: f64,
    /// Mean entropy on in-distribution data.
    pub id_entropy: f64,
    /// Mean entropy on the OOD probe.
    pub ood_entropy: f64,
}

/// A corrupted-data experiment result for one severity level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionResult {
    /// Corruption severity (1–5).
    pub severity: u8,
    /// Deterministic-baseline accuracy.
    pub baseline_accuracy: f64,
    /// Bayesian (MC) accuracy.
    pub bayesian_accuracy: f64,
}

/// A generic named scalar series (for figure-style outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label.
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series lengths differ");
        Self { label: label.into(), x, y }
    }
}

crate::impl_to_json!(Table1Row {
    method,
    software_accuracy,
    hardware_accuracy,
    simulated_energy_per_image,
    reference_energy_per_image,
    paper_energy_uj,
    paper_accuracy_pct,
    counter,
});

crate::impl_to_json!(OodResult { method, detection_rate, auroc, id_entropy, ood_entropy });

crate::impl_to_json!(CorruptionResult { severity, baseline_accuracy, bayesian_accuracy });

crate::impl_to_json!(Series { label, x, y });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, ToJson};

    #[test]
    fn series_roundtrips_through_json() {
        let s = Series::new("accuracy", vec![0.0, 0.1], vec![0.9, 0.8]);
        let back = parse(&s.to_json().to_string()).unwrap();
        assert_eq!(back.get("label").unwrap().as_str(), Some("accuracy"));
        let y: Vec<f64> =
            back.get("y").unwrap().as_arr().unwrap().iter().filter_map(|v| v.as_f64()).collect();
        assert_eq!(y, s.y);
        assert_eq!(back, s.to_json());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn series_rejects_mismatch() {
        let _ = Series::new("x", vec![1.0], vec![]);
    }

    #[test]
    fn table1_row_serializes() {
        let row = Table1Row {
            method: Method::SpinDrop,
            software_accuracy: 0.91,
            hardware_accuracy: 0.9,
            simulated_energy_per_image: Joules(2e-6),
            reference_energy_per_image: Joules(2.1e-6),
            paper_energy_uj: Some(2.0),
            paper_accuracy_pct: Some(91.95),
            counter: OpCounter::new(),
        };
        let json = row.to_json().to_string_pretty();
        assert!(json.contains("SpinDrop"));
        let back = parse(&json).unwrap();
        assert_eq!(back.get("software_accuracy").unwrap().as_f64(), Some(0.91));
        assert_eq!(back.get("paper_energy_uj").unwrap().as_f64(), Some(2.0));
        assert!(back.get("counter").unwrap().get("cell_reads").is_some());
    }
}
