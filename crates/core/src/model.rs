//! The compiled hardware model: compile → calibrate → predict.

use crate::blocks::{
    BlockState, FeatureStats, HwBlock, HwConv, HwDigitalFc, HwDropout, HwFc, HwFcSpinBayes,
    HwInvNorm, HwNorm,
};
use crate::extract::TrainedParams;
use crate::json::ToJson;
use crate::pool::ThreadPool;
use neuspin_bayes::{
    entropy_threshold_for_coverage, mc_predict_seeded, pass_seeds, quantize, ArchConfig, Gated,
    McAccumulator, Method, Predictive, SpinBayesConfig,
};
use neuspin_cim::{
    fault_aware_remap, march_test, repair_columns, Arbiter, BistConfig, Crossbar, CrossbarConfig,
    KernelPolicy, MlcCrossbar, OpCounter, ScaleDropModule, SpatialDropModule, SpinDropModule,
};
use neuspin_device::stats::LogNormal;
use neuspin_device::{AgingConfig, AgingReport};
use neuspin_energy::{EnergyBreakdown, EnergyModel, Joules};
use neuspin_nn::conv::ConvGeometry;
use neuspin_nn::{softmax_into, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::{SeedableRng, SplitMix64};

fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Hardware deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareConfig {
    /// Crossbar process corner, defects, noise, ADC.
    pub crossbar: CrossbarConfig,
    /// Monte-Carlo passes per prediction (0 = use the method profile's
    /// publication setting; typically set lower for simulation speed).
    pub passes: usize,
    /// SpinBayes posterior configuration.
    pub spinbayes: SpinBayesConfig,
    /// Bits charged per gaussian sample in the VI scale sampler.
    pub vi_bits_per_sample: u32,
    /// Post-fabrication closed-loop tuning of the dropout modules:
    /// measurement bits per bisection step (0 disables tuning and
    /// leaves every module at its variation-skewed open-loop bias).
    pub module_tuning_bits: u32,
    /// Spare columns fabricated per binary crossbar for redundancy
    /// repair (0 = no spares; see
    /// [`HardwareModel::fault_management`]).
    pub spare_cols: usize,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self {
            crossbar: CrossbarConfig::default(),
            passes: 16,
            spinbayes: SpinBayesConfig::default(),
            vi_bits_per_sample: 4,
            module_tuning_bits: 150,
            spare_cols: 0,
        }
    }
}

/// A network compiled onto the spintronic CIM simulator.
///
/// Built from a *trained* software model via [`HardwareModel::compile`];
/// run [`HardwareModel::calibrate`] once after compilation (and after
/// any drift injection, if re-calibration is part of the scenario being
/// studied), then [`HardwareModel::predict`].
#[derive(Debug, Clone)]
pub struct HardwareModel {
    blocks: Vec<HwBlock>,
    method: Method,
    passes: usize,
    baseline: OpCounter,
    /// Op counts merged back from parallel worker clones (their blocks'
    /// counters advanced off-model); folded into
    /// [`HardwareModel::raw_counter`].
    extra: OpCounter,
    energy_model: EnergyModel,
    /// Forward-plan ping-pong activation pair: each block writes into
    /// one while reading the other, so a steady-state planned pass
    /// allocates nothing.
    ping: Tensor,
    pong: Tensor,
    /// Per-pass softmax scratch for the planned MC engines.
    probs: Tensor,
    /// The input shape the current forward plan was sized for.
    plan_shape: Vec<usize>,
    /// Times the plan was (re)built — grows only when the input batch
    /// shape changes between passes.
    plan_rebuilds: u64,
}

/// The complete mutable state of a compiled pipeline — per-block device
/// and RNG state plus the model-level op-counter windows. Captured by
/// [`HardwareModel::export_state`] and reapplied by
/// [`HardwareModel::import_state`] onto a twin compiled by the same
/// deterministic constructor (same trained weights, architecture,
/// hardware config, and seed). Forward-plan scratch (`ping`/`pong`,
/// plan shape) is derived per batch and deliberately not captured.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ModelState {
    pub(crate) blocks: Vec<BlockState>,
    pub(crate) baseline: OpCounter,
    pub(crate) extra: OpCounter,
}

impl HardwareModel {
    /// Compiles a trained method-CNN (from [`neuspin_bayes::build_cnn`])
    /// onto crossbars drawn from `config.crossbar`'s process corner.
    ///
    /// # Panics
    ///
    /// Panics if the trained model's parameters do not match `arch`.
    pub fn compile(
        trained: &mut Sequential,
        method: Method,
        arch: &ArchConfig,
        config: &HardwareConfig,
        rng: &mut StdRng,
    ) -> Self {
        let params = TrainedParams::from_model(trained, arch);
        let corner = config.crossbar.corner;
        let mut blocks: Vec<HwBlock> = Vec::new();

        let conv_geo = |c_in: usize, c_out: usize| ConvGeometry {
            in_channels: c_in,
            out_channels: c_out,
            kernel: 3,
            stride: 1,
            padding: 1,
        };

        // Block builder helpers -------------------------------------------------
        let make_conv = |idx: usize, c_in: usize, c_out: usize, rng: &mut StdRng| -> HwConv {
            let (signs, alphas) = params.binarized(idx);
            let (o, i) = (c_out, c_in * 9);
            let layout = TrainedParams::to_crossbar_layout(&signs, o, i);
            HwConv {
                xbar: Crossbar::program_with_spares(
                    &layout,
                    i,
                    o,
                    config.spare_cols,
                    &config.crossbar,
                    rng,
                ),
                geo: conv_geo(c_in, c_out),
                alphas,
                bias: params.biases[idx].as_slice().to_vec(),
                local: OpCounter::new(),
                col: Tensor::default(),
                ybuf: Vec::new(),
            }
        };

        let norm_block = |norm_idx: usize, p: f32, rng: &mut StdRng| -> HwBlock {
            let gamma = params.gammas[norm_idx].as_slice().to_vec();
            let beta = params.betas[norm_idx].as_slice().to_vec();
            if method == Method::AffineDropout {
                let modules = if p > 0.0 {
                    let mk = |rng: &mut StdRng| {
                        let mut m = SpinDropModule::new(p as f64, corner, rng);
                        if config.module_tuning_bits > 0 {
                            m.tune(config.module_tuning_bits, 0.02, rng);
                        }
                        m
                    };
                    Some((mk(rng), mk(rng)))
                } else {
                    None
                };
                HwBlock::InvNorm(HwInvNorm {
                    gamma,
                    beta,
                    modules,
                    local: OpCounter::new(),
                    abuf: Vec::new(),
                })
            } else {
                let f = gamma.len();
                HwBlock::Norm(HwNorm {
                    gamma,
                    beta,
                    mean: vec![0.0; f],
                    var: vec![1.0; f],
                    stats: FeatureStats::default(),
                    local: OpCounter::new(),
                })
            }
        };

        let mut scale_idx = 0usize;
        let mut vi_idx = 0usize;
        let mut dropout_block =
            |features: usize, rng: &mut StdRng| -> Option<HwBlock> {
                match method {
                    Method::SpinDrop => Some(HwBlock::Dropout(HwDropout::PerNeuron {
                        modules: (0..features)
                            .map(|_| {
                                let mut m = SpinDropModule::new(arch.p as f64, corner, rng);
                                if config.module_tuning_bits > 0 {
                                    m.tune(config.module_tuning_bits, 0.02, rng);
                                }
                                m
                            })
                            .collect(),
                        p: arch.p,
                    })),
                    Method::SpatialSpinDrop => None, // built separately (needs channel count)
                    Method::SpinScaleDrop => {
                        let scale = params.scales[scale_idx].as_slice().to_vec();
                        scale_idx += 1;
                        let mut module =
                            ScaleDropModule::new(arch.p as f64, scale.len(), corner, rng);
                        if config.module_tuning_bits > 0 {
                            module.tune(config.module_tuning_bits, 0.02, rng);
                        }
                        Some(HwBlock::Dropout(HwDropout::Scale {
                            module,
                            scale,
                            local: OpCounter::new(),
                        }))
                    }
                    Method::SubsetVi => {
                        let mu = params.mus[vi_idx].as_slice().to_vec();
                        let sigma: Vec<f32> =
                            params.rhos[vi_idx].as_slice().iter().map(|&r| softplus(r)).collect();
                        vi_idx += 1;
                        Some(HwBlock::Dropout(HwDropout::ViScale {
                            mu,
                            sigma,
                            bits_per_sample: config.vi_bits_per_sample,
                            local: OpCounter::new(),
                            scratch: Vec::new(),
                        }))
                    }
                    _ => None,
                }
            };

        let spatial_block = |channels: usize, rows_gated: usize, rng: &mut StdRng| -> HwBlock {
            HwBlock::Dropout(HwDropout::PerChannel {
                modules: (0..channels)
                    .map(|_| {
                        let mut m =
                            SpatialDropModule::new(arch.p as f64, rows_gated, corner, rng);
                        if config.module_tuning_bits > 0 {
                            m.tune(config.module_tuning_bits, 0.02, rng);
                        }
                        m
                    })
                    .collect(),
                p: arch.p,
            })
        };

        // --- conv block 1 ---
        blocks.push(HwBlock::Conv(make_conv(0, 1, arch.c1, rng)));
        blocks.push(norm_block(0, arch.p, rng));
        blocks.push(HwBlock::HardTanh);
        let act1 = arch.c1 * arch.side * arch.side;
        if method == Method::SpatialSpinDrop {
            blocks.push(spatial_block(arch.c1, 9, rng));
        } else if let Some(b) = dropout_block(act1, rng) {
            blocks.push(b);
        }
        blocks.push(HwBlock::MaxPool(2));

        // --- conv block 2 ---
        blocks.push(HwBlock::Conv(make_conv(1, arch.c1, arch.c2, rng)));
        blocks.push(norm_block(1, arch.p, rng));
        blocks.push(HwBlock::HardTanh);
        let act2 = arch.c2 * (arch.side / 2) * (arch.side / 2);
        if method == Method::SpatialSpinDrop {
            blocks.push(spatial_block(arch.c2, 9, rng));
        } else if let Some(b) = dropout_block(act2, rng) {
            blocks.push(b);
        }
        blocks.push(HwBlock::MaxPool(2));

        // --- FC stage ---
        blocks.push(HwBlock::Flatten);
        if method == Method::SpinBayes {
            // Multi-instance quantized crossbars around the *latent*
            // fc1 weights, arbiter-selected.
            let w = &params.weights[2];
            let sb = &config.spinbayes;
            let rms = (w.norm_sq() / w.len() as f32).sqrt();
            // Clip the level ladder at 3·rms: spending levels on the
            // outlier tail would starve the bulk of the distribution
            // (the paper's design-time bit-precision exploration).
            let w_max = (3.0 * rms).min(w.map(f32::abs).max()).max(1e-6) as f64;
            let sigma = sb.rel_sigma * rms;
            let (o, i) = (arch.hidden, arch.flat_features());
            let mut xbars = Vec::with_capacity(sb.instances);
            for k in 0..sb.instances {
                let mut inst = vec![0.0f32; o * i];
                for r in 0..o {
                    for c in 0..i {
                        let base = w[r * i + c];
                        let perturbed = if k == 0 {
                            base
                        } else {
                            base + sigma
                                * neuspin_device::stats::standard_normal(rng) as f32
                        };
                        // Crossbar layout: rows = inputs.
                        inst[c * o + r] =
                            quantize(perturbed, sb.levels, w_max as f32);
                    }
                }
                xbars.push(MlcCrossbar::program(
                    &inst,
                    i,
                    o,
                    sb.levels - 1,
                    w_max,
                    &config.crossbar,
                    rng,
                ));
            }
            blocks.push(HwBlock::FcSpinBayes(HwFcSpinBayes {
                xbars,
                arbiter: Arbiter::new(sb.instances, corner, rng),
                bias: params.biases[2].as_slice().to_vec(),
                out_features: arch.hidden,
                local: OpCounter::new(),
                ybuf: Vec::new(),
            }));
        } else {
            let (signs, alphas) = params.binarized(2);
            let (o, i) = (arch.hidden, arch.flat_features());
            let layout = TrainedParams::to_crossbar_layout(&signs, o, i);
            blocks.push(HwBlock::Fc(HwFc {
                xbar: Crossbar::program_with_spares(
                    &layout,
                    i,
                    o,
                    config.spare_cols,
                    &config.crossbar,
                    rng,
                ),
                alphas,
                bias: params.biases[2].as_slice().to_vec(),
                local: OpCounter::new(),
                ybuf: Vec::new(),
            }));
        }
        blocks.push(norm_block(2, arch.p, rng));
        blocks.push(HwBlock::HardTanh);
        if method == Method::SpatialSpinDrop {
            blocks.push(spatial_block(arch.hidden, 1, rng));
        } else if let Some(b) = dropout_block(arch.hidden, rng) {
            blocks.push(b);
        }

        // Final classifier in the digital periphery.
        blocks.push(HwBlock::DigitalFc(HwDigitalFc {
            weight: params.weights[3].clone(),
            bias: params.biases[3].as_slice().to_vec(),
            local: OpCounter::new(),
            weight_t: Tensor::default(),
        }));

        let mut model = Self {
            blocks,
            method,
            passes: config.passes.max(1),
            baseline: OpCounter::new(),
            extra: OpCounter::new(),
            energy_model: EnergyModel::default(),
            ping: Tensor::default(),
            pong: Tensor::default(),
            probs: Tensor::default(),
            plan_shape: Vec::new(),
            plan_rebuilds: 0,
        };
        model.baseline = model.raw_counter();
        model
    }

    /// The method this model implements.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Monte-Carlo passes per prediction.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Sets the MC pass count.
    ///
    /// # Panics
    ///
    /// Panics if `passes == 0`.
    pub fn set_passes(&mut self, passes: usize) {
        assert!(passes > 0, "passes must be positive");
        self.passes = passes;
    }

    /// One hardware forward pass.
    pub fn forward(&mut self, x: &Tensor, stochastic: bool, rng: &mut StdRng) -> Tensor {
        if crate::telemetry::active() {
            return self.forward_traced(x, stochastic, rng);
        }
        let mut cur = x.clone();
        for block in &mut self.blocks {
            cur = block.forward(&cur, stochastic, false, rng);
        }
        cur
    }

    /// The telemetry-instrumented twin of [`HardwareModel::forward`]:
    /// one span per pipeline block carrying the block's op-counter
    /// delta, plus a whole-pass span with the energy charged to this
    /// forward. Consumes exactly the same RNG draws as the plain path,
    /// so traced and untraced runs are bit-identical.
    fn forward_traced(&mut self, x: &Tensor, stochastic: bool, rng: &mut StdRng) -> Tensor {
        let mut span = crate::span!("hw_forward", batch = x.shape()[0]);
        let before = self.raw_counter();
        let mut cur = x.clone();
        for (layer, block) in self.blocks.iter_mut().enumerate() {
            let mut block_span = crate::span!("hw_block", layer = layer, kind = block.kind());
            let block_before = block.counter();
            cur = block.forward(&cur, stochastic, false, rng);
            block_span.record_ops(&block.counter().since(&block_before));
        }
        let delta = self.raw_counter().since(&before);
        // Recorded as a field only: the per-block spans above already
        // folded these ops into the registry rollup.
        span.record("ops", delta.to_json());
        span.record("energy_j", self.energy_model.energy_of(&delta).0);
        cur
    }

    /// (Re)sizes the forward plan for input `shape`. Returns whether a
    /// rebuild happened: the pass that follows a rebuild regrows every
    /// scratch buffer once; subsequent same-shape passes reuse them.
    fn plan_for(&mut self, shape: &[usize]) -> bool {
        if self.plan_shape == shape {
            return false;
        }
        self.plan_shape.clear();
        self.plan_shape.extend_from_slice(shape);
        self.plan_rebuilds += 1;
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::counter("plan_rebuilds_total").inc();
        }
        true
    }

    /// One hardware forward pass through the planned, allocation-free
    /// path: activations ping-pong between two persistent buffers and
    /// every block writes through its `forward_into` twin, so a
    /// steady-state pass (same batch shape as the previous one) touches
    /// the heap zero times. Bit-identical to [`HardwareModel::forward`]
    /// — same float-op order, op tallies, and RNG consumption. The
    /// result lives in an internal buffer; clone it if it must outlive
    /// the next pass.
    pub fn forward_planned(
        &mut self,
        x: &Tensor,
        stochastic: bool,
        rng: &mut StdRng,
    ) -> &Tensor {
        let rebuilt = self.plan_for(x.shape());
        if crate::telemetry::active() {
            return self.forward_planned_traced(x, stochastic, rebuilt, rng);
        }
        let mut a = std::mem::take(&mut self.ping);
        let mut b = std::mem::take(&mut self.pong);
        let mut first = true;
        for block in &mut self.blocks {
            let src = if first { x } else { &b };
            block.forward_into(src, &mut a, stochastic, false, rng);
            std::mem::swap(&mut a, &mut b);
            first = false;
        }
        self.ping = a;
        self.pong = b;
        &self.pong
    }

    /// The telemetry-instrumented twin of
    /// [`HardwareModel::forward_planned`]: emits exactly the span
    /// structure and annotations of [`HardwareModel::forward`]'s traced
    /// path, so planned and legacy runs produce byte-identical traces.
    fn forward_planned_traced(
        &mut self,
        x: &Tensor,
        stochastic: bool,
        rebuilt: bool,
        rng: &mut StdRng,
    ) -> &Tensor {
        let mut span = crate::span!("hw_forward", batch = x.shape()[0]);
        let before = self.raw_counter();
        let mut a = std::mem::take(&mut self.ping);
        let mut b = std::mem::take(&mut self.pong);
        let mut first = true;
        for (layer, block) in self.blocks.iter_mut().enumerate() {
            let mut block_span = crate::span!("hw_block", layer = layer, kind = block.kind());
            let block_before = block.counter();
            let src = if first { x } else { &b };
            block.forward_into(src, &mut a, stochastic, false, rng);
            block_span.record_ops(&block.counter().since(&block_before));
            std::mem::swap(&mut a, &mut b);
            first = false;
        }
        self.ping = a;
        self.pong = b;
        if rebuilt && crate::telemetry::metrics_enabled() {
            crate::telemetry::gauge("scratch_bytes").set(self.scratch_bytes() as f64);
        }
        let delta = self.raw_counter().since(&before);
        span.record("ops", delta.to_json());
        span.record("energy_j", self.energy_model.energy_of(&delta).0);
        &self.pong
    }

    /// Bytes currently held by the forward plan's scratch arenas: the
    /// ping-pong activation pair, the softmax buffer, and every block's
    /// private scratch. Exported as the `scratch_bytes` gauge when a
    /// plan rebuild grows them.
    pub fn scratch_bytes(&self) -> usize {
        (self.ping.capacity() + self.pong.capacity() + self.probs.capacity()) * 4
            + self.blocks.iter().map(|b| b.scratch_bytes()).sum::<usize>()
    }

    /// Times the forward plan has been (re)built (see
    /// [`HardwareModel::forward_planned`]); a steady stream of
    /// same-shape batches holds this at 1.
    pub fn plan_rebuilds(&self) -> u64 {
        self.plan_rebuilds
    }

    /// Calibrates the digital norm statistics by running `rounds`
    /// deterministic hardware passes over `inputs` (the standard CIM
    /// deployment flow; absorbs programming-time variation). A no-op for
    /// the inverted-norm method, which needs no stored statistics.
    pub fn calibrate(&mut self, inputs: &Tensor, rounds: usize, rng: &mut StdRng) {
        for _ in 0..rounds.max(1) {
            let mut cur = inputs.clone();
            for block in &mut self.blocks {
                cur = block.forward(&cur, false, true, rng);
            }
        }
    }

    /// Bayesian prediction: `passes` stochastic hardware passes through
    /// the planned zero-allocation path, aggregated by the shared MC
    /// machinery ([`neuspin_bayes::McAccumulator`]).
    pub fn predict(&mut self, inputs: &Tensor, rng: &mut StdRng) -> Predictive {
        let stochastic = self.method.is_bayesian();
        let passes = if stochastic { self.passes } else { 1 };
        let mut acc = McAccumulator::new();
        let mut probs = std::mem::take(&mut self.probs);
        for _ in 0..passes {
            let logits = self.forward_planned(inputs, stochastic, rng);
            softmax_into(logits, &mut probs);
            acc.push(&probs);
        }
        self.probs = probs;
        acc.finish()
    }

    /// Seeded sequential Bayesian prediction: like
    /// [`HardwareModel::predict`], but every MC pass runs on its own RNG
    /// stream derived from `seed` (the [`neuspin_bayes::pass_seeds`]
    /// schedule) instead of one shared ambient stream. The reference
    /// path [`HardwareModel::predict_par`] is bit-identical to, at any
    /// thread count. Runs through the planned zero-allocation forward;
    /// [`HardwareModel::predict_seeded_unplanned`] is the retained
    /// pre-plan engine (bit-identical, allocation-heavy).
    pub fn predict_seeded(&mut self, inputs: &Tensor, seed: u64) -> Predictive {
        let stochastic = self.method.is_bayesian();
        let passes = if stochastic { self.passes } else { 1 };
        let _span = crate::span!("predict", engine = "seq", passes = passes);
        let seeds = pass_seeds(seed, passes);
        let mut acc = McAccumulator::new();
        let mut probs = std::mem::take(&mut self.probs);
        for (t, &pass_seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(pass_seed);
            let logits = {
                let _pass = crate::span!("mc_pass", pass = t);
                self.forward_planned(inputs, stochastic, &mut rng)
            };
            softmax_into(logits, &mut probs);
            acc.push(&probs);
        }
        self.probs = probs;
        acc.finish()
    }

    /// The pre-plan sequential engine: allocates a fresh activation
    /// tensor per block per pass. Retained as the "before" baseline of
    /// the `exp_throughput` allocation/speedup comparison — results and
    /// traces are bit-identical to [`HardwareModel::predict_seeded`],
    /// only the memory behavior differs.
    pub fn predict_seeded_unplanned(&mut self, inputs: &Tensor, seed: u64) -> Predictive {
        let stochastic = self.method.is_bayesian();
        let passes = if stochastic { self.passes } else { 1 };
        let _span = crate::span!("predict", engine = "seq", passes = passes);
        mc_predict_seeded(passes, seed, |t, rng| {
            let _pass = crate::span!("mc_pass", pass = t);
            self.forward(inputs, stochastic, rng)
        })
    }

    /// Deterministic parallel Bayesian prediction: the MC passes fan out
    /// over `pool` workers, each pass on the same per-pass RNG stream
    /// [`HardwareModel::predict_seeded`] would give it, reduced in pass
    /// order — so the returned [`Predictive`] is bit-identical for any
    /// thread count. Each worker runs on a clone of the model; the
    /// clones' op counters and sense-margin statistics are merged back
    /// into `self` on join, keeping energy accounting and the health
    /// monitor accurate.
    pub fn predict_par(&mut self, inputs: &Tensor, seed: u64, pool: &ThreadPool) -> Predictive {
        let stochastic = self.method.is_bayesian();
        let passes = if stochastic { self.passes } else { 1 };
        let mut span = crate::span!("predict", engine = "par", passes = passes);
        // Nothing to fan out: run the planned sequential engine inline
        // (no clone, no merge). Same RNG schedule, reduction order, and
        // trace bytes as the pooled path, so results stay bit-identical
        // across thread counts.
        if passes == 1 || pool.threads() == 1 {
            return self.mc_inline_par(inputs, seed, passes, stochastic, &mut span);
        }
        let base_counter = self.raw_counter();
        let n_margins = self.crossbar_margins().len();
        let this: &HardwareModel = self;
        let (pred, workers) = crate::pool::mc_predict_par(
            pool,
            passes,
            seed,
            // Margin accumulators start from zero in every clone: the
            // delta below is then an exact per-worker sum, independent
            // of the source model's accumulated (non-dyadic) totals —
            // a `(base + m) - base` subtraction is not.
            |_| {
                let mut m = this.clone();
                m.reset_sense_margins();
                m
            },
            |model: &mut HardwareModel, _, rng| model.forward(inputs, stochastic, rng),
        );
        // The one shared merge path (satellite: no bespoke `+=` loops).
        let counter_delta =
            OpCounter::merged(workers.iter().map(|w| w.raw_counter().since(&base_counter)));
        let mut margin_deltas = vec![(0.0f64, 0u64); n_margins];
        for worker in &workers {
            for (delta, after) in
                margin_deltas.iter_mut().zip(worker.crossbar_margins())
            {
                delta.0 += after.0;
                delta.1 += after.1;
            }
        }
        self.extra.merge(&counter_delta);
        self.merge_crossbar_margins(&margin_deltas);
        // Field only: worker-side block spans already fed the rollup.
        span.record("ops", counter_delta.to_json());
        span.record("energy_j", self.energy_model.energy_of(&counter_delta).0);
        pred
    }

    /// [`HardwareModel::predict_par`] over persistent replicas: instead
    /// of cloning the model per call, the workers run on `bank`'s
    /// replicas — cloned once when the bank is (re)attached — and their
    /// op-counter and sense-margin deltas are resynced into `self`
    /// through the same merge path after every call. Bit-identical to
    /// [`HardwareModel::predict_seeded`] at any thread count; a
    /// steady-state call clones nothing.
    ///
    /// Call [`ReplicaBank::invalidate`] after any mutation of `self`
    /// (fault management, drift, scrub, recalibration) so the next call
    /// re-clones from the updated weights.
    pub fn predict_par_in(
        &mut self,
        inputs: &Tensor,
        seed: u64,
        pool: &ThreadPool,
        bank: &mut ReplicaBank,
    ) -> Predictive {
        let stochastic = self.method.is_bayesian();
        let passes = if stochastic { self.passes } else { 1 };
        let mut span = crate::span!("predict", engine = "par", passes = passes);
        if passes == 1 || pool.threads() == 1 {
            return self.mc_inline_par(inputs, seed, passes, stochastic, &mut span);
        }
        let workers = pool.threads().min(passes);
        bank.ensure(self, workers);
        let pred = crate::pool::mc_predict_par_on(
            pool,
            passes,
            seed,
            &mut bank.replicas,
            |rep: &mut Replica, _, rng| rep.model.forward_planned(inputs, stochastic, rng).clone(),
        );
        // Resync: fold each replica's delta since its last sync into
        // the live model through the one shared merge path, then
        // refresh the bases so the next sync starts clean.
        let counter_delta = OpCounter::merged(
            bank.replicas.iter().map(|r| r.model.raw_counter().since(&r.counter_base)),
        );
        let mut margin_deltas: Vec<(f64, u64)> = Vec::new();
        for rep in &bank.replicas {
            let after = rep.model.crossbar_margins();
            if margin_deltas.is_empty() {
                margin_deltas = vec![(0.0, 0); after.len()];
            }
            for (delta, (a, b)) in
                margin_deltas.iter_mut().zip(after.into_iter().zip(&rep.margin_base))
            {
                delta.0 += a.0 - b.0;
                delta.1 += a.1 - b.1;
            }
        }
        self.extra.merge(&counter_delta);
        self.merge_crossbar_margins(&margin_deltas);
        for rep in &mut bank.replicas {
            rep.counter_base = rep.model.raw_counter();
            // Zero the replica's margin accumulators so the next op's
            // delta is again an exact zero-based sum — warm and
            // freshly-cloned banks must produce bit-identical merges
            // (the checkpoint/restore battery holds this at any
            // thread count).
            rep.model.reset_sense_margins();
            rep.margin_base = rep.model.crossbar_margins();
        }
        bank.syncs += 1;
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::counter("replica_syncs_total").inc();
        }
        span.record("ops", counter_delta.to_json());
        span.record("energy_j", self.energy_model.energy_of(&counter_delta).0);
        pred
    }

    /// The short-circuit body shared by the parallel engines when there
    /// is nothing to fan out (`passes == 1` or a single-thread pool):
    /// the planned sequential loop, but with the softmax inside each
    /// `mc_pass` span — exactly where the pooled workers put it — so
    /// the emitted trace byte-compares with every other thread count.
    fn mc_inline_par(
        &mut self,
        inputs: &Tensor,
        seed: u64,
        passes: usize,
        stochastic: bool,
        span: &mut crate::telemetry::SpanGuard,
    ) -> Predictive {
        let base_counter = self.raw_counter();
        let seeds = pass_seeds(seed, passes);
        let mut acc = McAccumulator::new();
        let mut probs = std::mem::take(&mut self.probs);
        for (t, &pass_seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(pass_seed);
            {
                let _pass = crate::span!("mc_pass", pass = t);
                let logits = self.forward_planned(inputs, stochastic, &mut rng);
                softmax_into(logits, &mut probs);
            }
            acc.push(&probs);
        }
        self.probs = probs;
        let delta = self.raw_counter().since(&base_counter);
        span.record("ops", delta.to_json());
        span.record("energy_j", self.energy_model.energy_of(&delta).0);
        acc.finish()
    }

    /// Per-crossbar sense-margin accumulators `(sum, count)` in pipeline
    /// order — the snapshot/merge format of the parallel engine.
    fn crossbar_margins(&self) -> Vec<(f64, u64)> {
        let mut parts = Vec::new();
        for block in &self.blocks {
            match block {
                HwBlock::Conv(b) => parts.push(b.xbar.sense_margin_parts()),
                HwBlock::Fc(b) => parts.push(b.xbar.sense_margin_parts()),
                HwBlock::FcSpinBayes(b) => {
                    parts.extend(b.xbars.iter().map(|xb| xb.sense_margin_parts()));
                }
                _ => {}
            }
        }
        parts
    }

    /// Folds per-crossbar sense-margin deltas (same order as
    /// [`HardwareModel::crossbar_margins`]) back into the live model.
    fn merge_crossbar_margins(&mut self, deltas: &[(f64, u64)]) {
        let mut it = deltas.iter();
        let mut next = || *it.next().expect("margin delta count mismatch");
        for block in &mut self.blocks {
            match block {
                HwBlock::Conv(b) => {
                    let (sum, count) = next();
                    b.xbar.merge_sense_margin(sum, count);
                }
                HwBlock::Fc(b) => {
                    let (sum, count) = next();
                    b.xbar.merge_sense_margin(sum, count);
                }
                HwBlock::FcSpinBayes(b) => {
                    for xb in &mut b.xbars {
                        let (sum, count) = next();
                        xb.merge_sense_margin(sum, count);
                    }
                }
                _ => {}
            }
        }
    }

    /// Routes every binary crossbar through the retained seed kernel
    /// ([`neuspin_cim::Crossbar::matvec_reference`]) — the "before"
    /// baseline of the `exp_throughput` comparison. `false` restores
    /// automatic kernel selection. Outputs are bit-identical either
    /// way. Convenience wrapper over
    /// [`HardwareModel::set_kernel_policy`].
    pub fn use_reference_kernel(&mut self, on: bool) {
        self.set_kernel_policy(if on {
            KernelPolicy::Reference
        } else {
            KernelPolicy::Auto
        });
    }

    /// Sets the evaluation-kernel routing policy on every binary
    /// crossbar (see [`neuspin_cim::KernelPolicy`]). All policies are
    /// bit-identical; `Auto` (the default) lets noiseless ternary tiles
    /// take the packed XNOR/popcount fast path.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        for block in &mut self.blocks {
            match block {
                HwBlock::Conv(b) => b.xbar.set_kernel_policy(policy),
                HwBlock::Fc(b) => b.xbar.set_kernel_policy(policy),
                _ => {}
            }
        }
    }

    /// Total evaluations served by the packed XNOR/popcount kernel
    /// across all binary crossbars (see
    /// [`neuspin_cim::Crossbar::packed_calls`]). Worker clones do not
    /// merge this diagnostic, so assert engagement on sequential runs.
    pub fn packed_call_count(&self) -> u64 {
        let mut total = 0;
        for block in &self.blocks {
            match block {
                HwBlock::Conv(b) => total += b.xbar.packed_calls(),
                HwBlock::Fc(b) => total += b.xbar.packed_calls(),
                _ => {}
            }
        }
        total
    }

    /// Uncertainty-gated prediction: like [`HardwareModel::predict`],
    /// but samples whose predictive entropy exceeds `abstain_entropy`
    /// are abstained instead of silently answered — the graceful-
    /// degradation exit of the fault-management loop. Calibrate the
    /// threshold with [`HardwareModel::calibrate_abstention`].
    pub fn predict_gated(
        &mut self,
        inputs: &Tensor,
        abstain_entropy: f64,
        rng: &mut StdRng,
    ) -> (Predictive, Gated) {
        let pred = self.predict(inputs, rng);
        let gated = pred.gate(abstain_entropy);
        (pred, gated)
    }

    /// Calibrates the abstention threshold on held-out inputs: runs one
    /// predictive pass and returns the entropy level that keeps at
    /// least `coverage` of these (assumed healthy-hardware) samples.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `(0, 1]` or `calib` is empty.
    pub fn calibrate_abstention(
        &mut self,
        calib: &Tensor,
        coverage: f64,
        rng: &mut StdRng,
    ) -> f64 {
        let pred = self.predict(calib, rng);
        entropy_threshold_for_coverage(&pred.entropy, coverage)
    }

    /// Runs the production-test half of the fault-management loop over
    /// every binary crossbar: march-test BIST (estimated defect map),
    /// spare-column repair, and fault-aware remapping that routes the
    /// highest-α output channels onto the cleanest physical columns.
    /// Run it after compilation and *before* [`HardwareModel::calibrate`]
    /// (the remap changes each line's IR-drop position, which
    /// calibration then absorbs).
    ///
    /// Deterministic given the RNG seed: same die + same seed ⇒ same
    /// estimate, same repair decisions, same remap.
    pub fn fault_management(
        &mut self,
        bist: &BistConfig,
        rng: &mut StdRng,
    ) -> FaultManagementReport {
        let _span = crate::span!("fault_management");
        let mut layers = Vec::new();
        for (layer, block) in self.blocks.iter_mut().enumerate() {
            let (xbar, alphas): (&mut Crossbar, &[f32]) = match block {
                HwBlock::Conv(b) => (&mut b.xbar, &b.alphas),
                HwBlock::Fc(b) => (&mut b.xbar, &b.alphas),
                _ => continue,
            };
            let report = manage_crossbar(xbar, alphas, bist, rng);
            if crate::telemetry::active() {
                crate::trace_event!(
                    "layer_fault",
                    layer = layer,
                    flagged = report.flagged as u64,
                    repaired = report.repaired as u64,
                    unrepaired = report.unrepaired as u64,
                    remapped = report.remapped
                );
                crate::telemetry::counter("bist_flagged_total").add(report.flagged as u64);
                crate::telemetry::counter("repairs_total").add(report.repaired as u64);
                crate::telemetry::counter("remaps_total").add(u64::from(report.remapped));
            }
            layers.push(report);
        }
        FaultManagementReport { layers }
    }

    /// Read-only BIST audit over every binary crossbar: runs the march
    /// test (which restores array contents exactly — post-audit
    /// effective weights are bit-identical) without repairing or
    /// remapping, and returns `(flagged, known_defects)` per crossbar.
    /// Used as the re-commission gate when a restored die rejoins a
    /// fleet: a healthy restore flags no more cells than the die's
    /// known fabricated defect population (plus estimator slack).
    pub fn bist_audit(&mut self, bist: &BistConfig, rng: &mut StdRng) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for block in self.blocks.iter_mut() {
            let xbar: &mut Crossbar = match block {
                HwBlock::Conv(b) => &mut b.xbar,
                HwBlock::Fc(b) => &mut b.xbar,
                _ => continue,
            };
            let report = march_test(xbar, bist, rng);
            out.push((report.flagged(), xbar.defects().defect_count()));
        }
        out
    }

    /// Mean sense margin over every crossbar since the last
    /// [`HardwareModel::reset_sense_margins`] — the hardware-side
    /// signal for [`crate::HealthMonitor`]. Crossbars that have not
    /// evaluated yet contribute 0.
    pub fn mean_sense_margin(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for block in &self.blocks {
            match block {
                HwBlock::Conv(b) => {
                    sum += b.xbar.mean_sense_margin();
                    n += 1;
                }
                HwBlock::Fc(b) => {
                    sum += b.xbar.mean_sense_margin();
                    n += 1;
                }
                HwBlock::FcSpinBayes(b) => {
                    for xb in &b.xbars {
                        sum += xb.mean_sense_margin();
                        n += 1;
                    }
                }
                _ => {}
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Starts a fresh sense-margin window on every crossbar.
    pub fn reset_sense_margins(&mut self) {
        for block in &mut self.blocks {
            match block {
                HwBlock::Conv(b) => b.xbar.reset_sense_margin(),
                HwBlock::Fc(b) => b.xbar.reset_sense_margin(),
                HwBlock::FcSpinBayes(b) => {
                    for xb in &mut b.xbars {
                        xb.reset_sense_margin();
                    }
                }
                _ => {}
            }
        }
    }

    /// Deterministic (1-pass, stochastic units off) prediction through
    /// the planned zero-allocation path.
    pub fn predict_deterministic(&mut self, inputs: &Tensor, rng: &mut StdRng) -> Predictive {
        let mut acc = McAccumulator::new();
        let mut probs = std::mem::take(&mut self.probs);
        let logits = self.forward_planned(inputs, false, rng);
        softmax_into(logits, &mut probs);
        acc.push(&probs);
        self.probs = probs;
        acc.finish()
    }

    fn raw_counter(&self) -> OpCounter {
        let mut c = OpCounter::merged(self.blocks.iter().map(|b| b.counter()));
        c.merge(&self.extra);
        c
    }

    /// Op counts since the last [`HardwareModel::reset_counter`] (or
    /// compilation), excluding programming costs.
    pub fn counter(&self) -> OpCounter {
        self.raw_counter().since(&self.baseline)
    }

    /// Starts a fresh counting window.
    pub fn reset_counter(&mut self) {
        self.baseline = self.raw_counter();
    }

    /// Energy of the current counting window.
    pub fn energy(&self) -> Joules {
        self.energy_model.energy_of(&self.counter())
    }

    /// Energy breakdown of the current counting window.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.energy_model.breakdown(&self.counter())
    }

    /// Injects multiplicative in-field conductance drift into every
    /// crossbar: each cell's effective weight is scaled by an
    /// independent lognormal factor of sigma `sigma` (plus a global
    /// factor `global`). Models retention loss / temperature drift
    /// *after* calibration — the self-healing scenario of §III-A4.
    pub fn inject_drift(&mut self, global: f64, sigma: f64, rng: &mut StdRng) {
        let dist = LogNormal::from_median_sigma(1.0, sigma.max(1e-12));
        for block in &mut self.blocks {
            match block {
                HwBlock::Conv(b) => drift_crossbar(&mut b.xbar, global, &dist, rng),
                HwBlock::Fc(b) => drift_crossbar(&mut b.xbar, global, &dist, rng),
                HwBlock::FcSpinBayes(b) => {
                    for xb in &mut b.xbars {
                        drift_mlc(xb, global, &dist, rng);
                    }
                }
                _ => {}
            }
        }
    }

    /// Attaches the temporal degradation engine to every binary
    /// crossbar (see [`neuspin_cim::Crossbar::enable_aging`]), with a
    /// distinct per-layer seed derived from `config.seed`. The current
    /// stored contents become each array's golden scrub reference, so
    /// call this after compilation (and any fault-management remap).
    ///
    /// SpinBayes MLC arrays are left out, mirroring
    /// [`HardwareModel::fault_management`]: the lifetime machinery
    /// covers the binary SpinDrop family first.
    pub fn enable_aging(&mut self, config: &AgingConfig) {
        for (i, block) in self.blocks.iter_mut().enumerate() {
            let xbar = match block {
                HwBlock::Conv(b) => &mut b.xbar,
                HwBlock::Fc(b) => &mut b.xbar,
                _ => continue,
            };
            let layer = AgingConfig {
                seed: config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..config.clone()
            };
            xbar.enable_aging(&layer);
        }
    }

    /// Whether [`HardwareModel::enable_aging`] has attached the engine.
    pub fn aging_enabled(&self) -> bool {
        self.blocks.iter().any(|b| match b {
            HwBlock::Conv(b) => b.xbar.aging_enabled(),
            HwBlock::Fc(b) => b.xbar.aging_enabled(),
            _ => false,
        })
    }

    /// Advances every aged crossbar's virtual clock by `dt_hours` (see
    /// [`neuspin_cim::Crossbar::advance_time`]) and merges the per-layer
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if aging was never enabled.
    pub fn advance_time(&mut self, dt_hours: f64) -> AgingReport {
        assert!(self.aging_enabled(), "advance_time requires enable_aging");
        let mut total = AgingReport::default();
        for block in &mut self.blocks {
            let xbar = match block {
                HwBlock::Conv(b) => &mut b.xbar,
                HwBlock::Fc(b) => &mut b.xbar,
                _ => continue,
            };
            total.merge(&xbar.advance_time(dt_hours));
        }
        total
    }

    /// Scrubs every aged crossbar back to its golden contents (see
    /// [`neuspin_cim::Crossbar::scrub`]); returns the total number of
    /// decayed cells refreshed. The write energy is tallied like any
    /// reprogram and lands in [`HardwareModel::energy`].
    ///
    /// # Panics
    ///
    /// Panics if aging was never enabled.
    pub fn scrub(&mut self) -> usize {
        assert!(self.aging_enabled(), "scrub requires enable_aging");
        let mut refreshed = 0;
        for block in &mut self.blocks {
            let xbar = match block {
                HwBlock::Conv(b) => &mut b.xbar,
                HwBlock::Fc(b) => &mut b.xbar,
                _ => continue,
            };
            refreshed += xbar.scrub();
        }
        refreshed
    }

    /// Captures the pipeline's complete mutable state (see
    /// [`ModelState`]).
    pub(crate) fn export_state(&self) -> ModelState {
        ModelState {
            blocks: self.blocks.iter().map(HwBlock::export_state).collect(),
            baseline: self.baseline,
            extra: self.extra,
        }
    }

    /// Reapplies a captured state onto this pipeline. The model must be
    /// a twin: compiled by the same constructor from the same inputs
    /// (and with aging enabled if the captured state carries aging).
    /// The forward plan is invalidated — the next planned pass rebuilds
    /// it for its batch shape, which perturbs only the
    /// `plan_rebuilds` diagnostic, never outputs or RNG streams.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline length or any block kind/population
    /// differs from the captured state.
    pub(crate) fn import_state(&mut self, state: &ModelState) {
        assert_eq!(
            self.blocks.len(),
            state.blocks.len(),
            "checkpoint pipeline length mismatch"
        );
        for (block, s) in self.blocks.iter_mut().zip(&state.blocks) {
            block.import_state(s);
        }
        self.baseline = state.baseline;
        self.extra = state.extra;
        self.plan_shape.clear();
    }

    /// Chaos hook: flips the stored sign of `flips` pseudo-randomly
    /// chosen (non-defective) binary-crossbar cells — transient upsets
    /// beyond the aging model's retention/disturb machinery. Cell
    /// choices come from a dedicated SplitMix64 stream over `seed`;
    /// model and evaluation RNG streams are untouched, and no op-energy
    /// is tallied (radiation is free). Returns the number of cells
    /// actually flipped (defective targets are skipped, not redrawn).
    pub fn flip_stored_weight_bits(&mut self, flips: usize, seed: u64) -> usize {
        let mut targets: Vec<&mut Crossbar> = self
            .blocks
            .iter_mut()
            .filter_map(|b| match b {
                HwBlock::Conv(b) => Some(&mut b.xbar),
                HwBlock::Fc(b) => Some(&mut b.xbar),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            return 0;
        }
        let mut stream = SplitMix64::new(seed);
        let mut flipped = 0;
        for _ in 0..flips {
            let which = (stream.next_u64() % targets.len() as u64) as usize;
            let xbar = &mut targets[which];
            let row = (stream.next_u64() % xbar.rows() as u64) as usize;
            let col = (stream.next_u64() % xbar.cols() as u64) as usize;
            if xbar.flip_stored_sign(row, col) {
                flipped += 1;
            }
        }
        flipped
    }

    /// A human-readable description of the compiled pipeline: one line
    /// per stage with crossbar dimensions and module counts.
    pub fn summary(&self) -> String {
        let mut lines = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            let desc = match block {
                HwBlock::Conv(b) => format!(
                    "crossbar conv {}×{} (binary, α+bias digital)",
                    b.xbar.rows(),
                    b.xbar.cols()
                ),
                HwBlock::Fc(b) => {
                    format!("crossbar fc {}×{} (binary)", b.xbar.rows(), b.xbar.cols())
                }
                HwBlock::FcSpinBayes(b) => format!(
                    "SpinBayes fc: {} instances of {}×{} ({} levels) + arbiter",
                    b.xbars.len(),
                    b.xbars[0].rows(),
                    b.xbars[0].cols(),
                    b.xbars[0].levels()
                ),
                HwBlock::DigitalFc(b) => format!(
                    "digital fc {}×{}",
                    b.weight.shape()[1],
                    b.weight.shape()[0]
                ),
                HwBlock::Norm(b) => format!("calibrated norm ({} features)", b.gamma.len()),
                HwBlock::InvNorm(b) => format!(
                    "inverted norm ({} features{})",
                    b.gamma.len(),
                    if b.modules.is_some() { ", affine dropout" } else { "" }
                ),
                HwBlock::HardTanh => "hard-tanh".to_string(),
                HwBlock::MaxPool(k) => format!("max-pool {k}×{k}"),
                HwBlock::Flatten => "flatten".to_string(),
                HwBlock::Dropout(HwDropout::PerNeuron { modules, p }) => {
                    format!("SpinDrop: {} modules (p={p})", modules.len())
                }
                HwBlock::Dropout(HwDropout::PerChannel { modules, p }) => {
                    format!("Spatial-SpinDrop: {} modules (p={p})", modules.len())
                }
                HwBlock::Dropout(HwDropout::Scale { scale, .. }) => {
                    format!("ScaleDrop: 1 module, {}-entry SRAM scale", scale.len())
                }
                HwBlock::Dropout(HwDropout::ViScale { mu, .. }) => {
                    format!("VI scale sampler: {} gaussians/pass", mu.len())
                }
            };
            lines.push(format!("  [{i:>2}] {desc}"));
        }
        format!(
            "{} on CIM ({} stochastic modules, {} MC passes):\n{}",
            self.method,
            self.stochastic_module_count(),
            self.passes,
            lines.join("\n")
        )
    }

    /// Number of stochastic modules instantiated (the hardware-cost
    /// figure behind the paper's module-count comparisons).
    pub fn stochastic_module_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                HwBlock::Dropout(HwDropout::PerNeuron { modules, .. }) => modules.len(),
                HwBlock::Dropout(HwDropout::PerChannel { modules, .. }) => modules.len(),
                HwBlock::Dropout(HwDropout::Scale { .. }) => 1,
                HwBlock::Dropout(HwDropout::ViScale { mu, .. }) => mu.len(),
                HwBlock::InvNorm(n) if n.modules.is_some() => 2,
                HwBlock::FcSpinBayes(b) => b.arbiter.bits_per_draw(),
                _ => 0,
            })
            .sum()
    }
}

/// Persistent per-worker model replicas for
/// [`HardwareModel::predict_par_in`]: cloned from the serving model
/// once at attach time (or after [`ReplicaBank::invalidate`]) and
/// reused across calls, so steady-state parallel prediction spawns no
/// per-call clones. Each replica tracks the op-counter and sense-margin
/// baseline of its last sync; deltas beyond the baseline are folded
/// back into the live model through the same merge path
/// [`HardwareModel::predict_par`] uses.
#[derive(Debug, Default)]
pub struct ReplicaBank {
    replicas: Vec<Replica>,
    syncs: u64,
}

#[derive(Debug)]
struct Replica {
    model: HardwareModel,
    counter_base: OpCounter,
    margin_base: Vec<(f64, u64)>,
}

impl ReplicaBank {
    /// An empty bank; replicas are cloned lazily on first parallel use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the bank currently holds no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Times replica deltas have been merged back into a live model.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Drops every replica: the next parallel call re-clones from the
    /// live model. Call after any mutation of the source model (fault
    /// management, drift, scrub, aging, recalibration, remapping) — a
    /// stale replica would otherwise keep serving the old weights.
    pub fn invalidate(&mut self) {
        self.replicas.clear();
    }

    /// Commissions `workers` replicas of `src` unless that many are
    /// already attached. A replica's counter baseline starts at `src`'s
    /// current tally (a clone carries it), so the first sync reports
    /// only ops the replicas themselves performed; margin accumulators
    /// are zeroed so every sync's delta is an exact zero-based sum
    /// (bit-identical whether the bank is warm or freshly cloned).
    fn ensure(&mut self, src: &HardwareModel, workers: usize) {
        if self.replicas.len() == workers {
            return;
        }
        self.replicas.clear();
        self.replicas.extend((0..workers).map(|_| {
            let mut model = src.clone();
            model.reset_sense_margins();
            let counter_base = src.raw_counter();
            let margin_base = model.crossbar_margins();
            Replica { model, counter_base, margin_base }
        }));
    }
}

/// Per-crossbar outcome of [`HardwareModel::fault_management`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerFaultReport {
    /// Crossbar shape.
    pub rows: usize,
    /// Crossbar shape.
    pub cols: usize,
    /// Cells the BIST flagged as defective (estimate, physical
    /// coordinates).
    pub flagged: usize,
    /// Columns repaired with a spare.
    pub repaired: usize,
    /// Columns that needed a spare and got none.
    pub unrepaired: usize,
    /// Spares discarded as born-defective.
    pub dirty_spares: usize,
    /// Spares still unused after repair.
    pub spares_left: usize,
    /// Whether a non-identity fault-aware remap was applied.
    pub remapped: bool,
}

/// Aggregate outcome of [`HardwareModel::fault_management`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultManagementReport {
    /// One entry per binary crossbar, in pipeline order.
    pub layers: Vec<LayerFaultReport>,
}

impl FaultManagementReport {
    /// Total BIST-flagged cells.
    pub fn total_flagged(&self) -> usize {
        self.layers.iter().map(|l| l.flagged).sum()
    }

    /// Fraction of repair-needing columns that got a spare (1 when no
    /// column needed one).
    pub fn repair_success_rate(&self) -> f64 {
        let repaired: usize = self.layers.iter().map(|l| l.repaired).sum();
        let needed = repaired + self.layers.iter().map(|l| l.unrepaired).sum::<usize>();
        if needed == 0 {
            1.0
        } else {
            repaired as f64 / needed as f64
        }
    }

    /// Whether any crossbar was left with unrepaired hard faults.
    pub fn degraded(&self) -> bool {
        self.layers.iter().any(|l| l.unrepaired > 0)
    }
}

/// BIST → repair → fault-aware remap on one binary crossbar. Output
/// columns are ranked by |α| (each column's contribution is scaled by
/// its channel α, so high-α channels matter most); rows carry equal
/// binary weight and are ranked by damage only.
fn manage_crossbar(
    xbar: &mut Crossbar,
    alphas: &[f32],
    bist: &BistConfig,
    rng: &mut StdRng,
) -> LayerFaultReport {
    let report = march_test(xbar, bist, rng);
    let flagged = report.flagged();
    let mut estimated = report.estimated;
    let repair = repair_columns(xbar, &mut estimated);
    let (rows, cols) = (xbar.rows(), xbar.cols());
    let mut importance = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            importance[r * cols + c] = alphas.get(c).map_or(1.0, |a| a.abs());
        }
    }
    let remap = fault_aware_remap(&estimated, &importance, rows, cols);
    let remapped = !remap.is_identity();
    if remapped {
        xbar.apply_remap(remap.row_src, remap.col_src);
    }
    LayerFaultReport {
        rows,
        cols,
        flagged,
        repaired: repair.repaired.len(),
        unrepaired: repair.unrepaired.len(),
        dirty_spares: repair.dirty_spares,
        spares_left: xbar.available_spares(),
        remapped,
    }
}

fn drift_crossbar(
    xbar: &mut Crossbar,
    global: f64,
    dist: &LogNormal,
    rng: &mut StdRng,
) {
    xbar.apply_drift(|w| w * global * dist.sample(rng));
}

fn drift_mlc(xbar: &mut MlcCrossbar, global: f64, dist: &LogNormal, rng: &mut StdRng) {
    xbar.apply_drift(|w| w * global * dist.sample(rng));
}
