//! The runtime's view of the vendored distribution samplers, plus their
//! statistical acceptance tests.
//!
//! Implementations live in the vendored `rand` crate's `dist` module
//! (and are also re-exported by `neuspin_device::stats`, the historical
//! import path). The tests here are the subsystem's statistical
//! self-checks: sampler moments and shape parameters must land within
//! tight tolerances of their analytic values, from fixed seeds.

pub use rand::dist::{standard_normal, Bernoulli, Distribution, Gaussian, LogNormal, Standard, Uniform};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};
    use neuspin_device::stats::Running;

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2001);
        let d = Uniform::new(-3.0f64, 5.0);
        let r: Running = d.sample_n(200_000, &mut rng).into_iter().collect();
        // U(a,b): mean (a+b)/2 = 1, variance (b-a)²/12 = 16/3.
        assert!((r.mean() - 1.0).abs() < 0.02, "mean {}", r.mean());
        assert!((r.variance() - 16.0 / 3.0).abs() < 0.05, "var {}", r.variance());
    }

    #[test]
    fn gaussian_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2002);
        let g = Gaussian::new(-2.5, 1.75);
        let r: Running = g.sample_n(200_000, &mut rng).into_iter().collect();
        assert!((r.mean() + 2.5).abs() < 0.02, "mean {}", r.mean());
        assert!((r.std() - 1.75).abs() < 0.02, "std {}", r.std());
    }

    #[test]
    fn standard_normal_tail_mass() {
        let mut rng = StdRng::seed_from_u64(2003);
        let n = 200_000;
        let beyond_2 = (0..n).filter(|_| standard_normal(&mut rng).abs() > 2.0).count();
        // P(|Z| > 2) ≈ 0.0455.
        let frac = beyond_2 as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.004, "tail fraction {frac}");
    }

    #[test]
    fn bernoulli_hit_rate() {
        let mut rng = StdRng::seed_from_u64(2004);
        for &p in &[0.05, 0.3, 0.5, 0.85] {
            let b = Bernoulli::new(p);
            let hits = (0..100_000).filter(|_| b.sample(&mut rng)).count();
            let freq = hits as f64 / 100_000.0;
            assert!((freq - p).abs() < 0.01, "p {p}: freq {freq}");
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2005);
        let d = LogNormal::from_median_sigma(5_000.0, 0.4);
        let mut samples = d.sample_n(100_001, &mut rng);
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        assert!((median / 5_000.0 - 1.0).abs() < 0.03, "median {median}");
    }

    #[test]
    fn lognormal_log_std_matches_sigma() {
        let mut rng = StdRng::seed_from_u64(2006);
        let d = LogNormal::from_median_sigma(1.0, 0.25);
        let r: Running = d.sample_n(100_000, &mut rng).into_iter().map(f64::ln).collect();
        assert!((r.std() - 0.25).abs() < 0.01, "log-std {}", r.std());
    }

    #[test]
    fn standard_distribution_draws_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2007);
        let d = Standard;
        for _ in 0..1_000 {
            let x: f64 = d.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
