//! Unit tests for the hardware execution blocks (separate file to keep
//! `blocks.rs` focused on the implementation).

use crate::blocks::*;
use neuspin_cim::{Crossbar, CrossbarConfig, OpCounter, ScaleDropModule, SpinDropModule};
use neuspin_device::VariedParams;
use neuspin_nn::conv::ConvGeometry;
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng() -> StdRng {
    StdRng::seed_from_u64(4242)
}

/// Asserts that `forward_into` on a clone of `block` reproduces
/// `block.forward` bit for bit (same outputs, tallies, and RNG
/// consumption), twice in a row so the warm-scratch steady state is
/// covered too.
fn assert_into_twin(block: &mut HwBlock, x: &Tensor, stochastic: bool) {
    let mut twin = block.clone();
    let mut r1 = rng();
    let mut r2 = rng();
    let mut out = Tensor::from_vec(vec![f32::NAN; 3], &[3]); // dirty, wrong shape
    for round in 0..2 {
        let want = block.forward(x, stochastic, false, &mut r1);
        twin.forward_into(x, &mut out, stochastic, false, &mut r2);
        assert_eq!(out.shape(), want.shape(), "round {round}");
        for (a, b) in out.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "round {round}");
        }
        assert_eq!(twin.counter(), block.counter(), "round {round}");
    }
    // RNG streams advanced identically.
    assert_eq!(r1.next_u64(), r2.next_u64());
}

#[test]
fn hw_conv_matches_direct_convolution() {
    let mut r = rng();
    // 1→2 channels, 3×3, identity-ish kernels of ±1.
    let geo = ConvGeometry { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
    let signs: Vec<f32> = (0..9 * 2).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    // Crossbar layout rows=9 (patch), cols=2.
    let mut layout = vec![0.0f32; 18];
    for o in 0..2 {
        for i in 0..9 {
            layout[i * 2 + o] = signs[o * 9 + i];
        }
    }
    let mut block = HwConv {
        xbar: Crossbar::program(&layout, 9, 2, &CrossbarConfig::ideal(), &mut r),
        geo,
        alphas: vec![0.5, 2.0],
        bias: vec![0.1, -0.1],
        local: OpCounter::new(),
        col: Tensor::default(),
        ybuf: Vec::new(),
    };
    let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32 * 0.3).sin());
    let y = block.forward(&x, &mut r);
    assert_eq!(y.shape(), &[1, 2, 4, 4]);
    // Reference: direct convolution with the same ±1 kernels.
    let col = neuspin_nn::im2col(&x, &geo);
    for pos in 0..16 {
        for o in 0..2 {
            let mut acc = 0.0f32;
            for i in 0..9 {
                acc += col[pos * 9 + i] * signs[o * 9 + i];
            }
            let expected = acc * block.alphas[o] + block.bias[o];
            let got = y[o * 16 + pos];
            assert!((got - expected).abs() < 1e-4, "pos {pos} ch {o}: {got} vs {expected}");
        }
    }
}

#[test]
fn hw_norm_calibration_whitens_features() {
    let mut block = HwNorm {
        gamma: vec![1.0; 3],
        beta: vec![0.0; 3],
        mean: vec![0.0; 3],
        var: vec![1.0; 3],
        stats: FeatureStats::default(),
        local: OpCounter::new(),
    };
    // Features with distinct means/scales.
    let x = Tensor::from_fn(&[64, 3], |i| match i % 3 {
        0 => 5.0 + ((i / 3) as f32 * 0.37).sin(),
        1 => -2.0 + 3.0 * ((i / 3) as f32 * 0.53).cos(),
        _ => 0.5 * ((i / 3) as f32 * 0.71).sin(),
    });
    let _ = block.forward(&x, true); // calibration pass
    let y = block.forward(&x, false);
    for f in 0..3 {
        let col: Vec<f32> = (0..64).map(|n| y[n * 3 + f]).collect();
        let mean: f32 = col.iter().sum::<f32>() / 64.0;
        let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
        assert!(mean.abs() < 0.05, "feature {f} mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "feature {f} var {var}");
    }
}

#[test]
fn hw_norm_accumulates_across_calibration_rounds() {
    let mut block = HwNorm {
        gamma: vec![1.0],
        beta: vec![0.0],
        mean: vec![0.0],
        var: vec![1.0],
        stats: FeatureStats::default(),
        local: OpCounter::new(),
    };
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]);
    let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[4, 1]);
    let _ = block.forward(&a, true);
    let _ = block.forward(&b, true);
    // Mean over both batches = 4.5.
    assert!((block.mean[0] - 4.5).abs() < 1e-5, "mean {}", block.mean[0]);
}

#[test]
fn hw_inv_norm_heals_global_scale_at_block_level() {
    let mut r = rng();
    let mut block = HwInvNorm {
        gamma: vec![1.3, 0.7, 1.1, 0.9],
        beta: vec![0.1, -0.2, 0.0, 0.3],
        modules: None,
        local: OpCounter::new(),
        abuf: Vec::new(),
    };
    let x = Tensor::from_fn(&[2, 4], |i| (i as f32 * 0.61).cos());
    let y1 = block.forward(&x, false, &mut r);
    let scaled = &x * 1.7;
    let y2 = block.forward(&scaled, false, &mut r);
    // β breaks exact invariance, but the output must stay close.
    let diff = (&y1 - &y2).map(f32::abs).max();
    assert!(diff < 0.35, "inverted norm should largely absorb a 1.7× drift: {diff}");
    // Pure-affine case (β = 0) is exactly invariant.
    let mut pure = HwInvNorm {
        gamma: vec![1.3, 0.7, 1.1, 0.9],
        beta: vec![0.0; 4],
        modules: None,
        local: OpCounter::new(),
        abuf: Vec::new(),
    };
    let z1 = pure.forward(&x, false, &mut r);
    let z2 = pure.forward(&scaled, false, &mut r);
    assert!((&z1 - &z2).map(f32::abs).max() < 1e-4);
}

#[test]
fn hw_dropout_scale_identity_when_dropped() {
    let mut r = rng();
    // p ≈ 1 → always dropped.
    let module = ScaleDropModule::new(0.999, 3, VariedParams::ideal(), &mut r);
    let mut block = HwDropout::Scale {
        module,
        scale: vec![5.0, 5.0, 5.0],
        local: OpCounter::new(),
    };
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
    let mut identity_seen = false;
    for _ in 0..20 {
        if block.forward(&x, true, &mut r) == x {
            identity_seen = true;
            break;
        }
    }
    assert!(identity_seen);
}

#[test]
fn hw_dropout_per_neuron_counts_bits() {
    let mut r = rng();
    let modules: Vec<SpinDropModule> =
        (0..6).map(|_| SpinDropModule::new(0.3, VariedParams::ideal(), &mut r)).collect();
    let mut block = HwDropout::PerNeuron { modules, p: 0.3 };
    let x = Tensor::ones(&[2, 6]);
    let _ = block.forward(&x, true, &mut r);
    assert_eq!(block.counter().rng_bits, 12, "6 modules × 2 samples");
    // Non-stochastic pass consumes nothing.
    let y = block.forward(&x, false, &mut r);
    assert_eq!(y, x);
    assert_eq!(block.counter().rng_bits, 12);
}

#[test]
fn forward_into_twins_are_bit_identical() {
    let mut r = rng();
    // Noisy analog config so the conv exercises the RNG-drawing scalar
    // kernel, not just the packed one.
    let noisy = CrossbarConfig { read_noise: 0.05, ir_drop: 0.03, ..CrossbarConfig::ideal() };
    let geo = ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
    let layout: Vec<f32> =
        (0..18 * 3).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let conv = HwBlock::Conv(HwConv {
        xbar: Crossbar::program(&layout, 18, 3, &noisy, &mut r),
        geo,
        alphas: vec![0.5, 2.0, 1.25],
        bias: vec![0.1, -0.1, 0.0],
        local: OpCounter::new(),
        col: Tensor::default(),
        ybuf: Vec::new(),
    });
    let fc_layout: Vec<f32> = (0..12 * 4).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let fc = HwBlock::Fc(HwFc {
        xbar: Crossbar::program(&fc_layout, 12, 4, &noisy, &mut r),
        alphas: vec![1.0, 0.5, 2.0, 1.5],
        bias: vec![0.0, 0.1, -0.1, 0.2],
        local: OpCounter::new(),
        ybuf: Vec::new(),
    });
    let mlc_w: Vec<f32> = (0..12 * 4).map(|i| (i as f32 * 0.47).sin()).collect();
    let spinbayes = HwBlock::FcSpinBayes(HwFcSpinBayes {
        xbars: (0..3)
            .map(|_| {
                neuspin_cim::MlcCrossbar::program(&mlc_w, 12, 4, 4, 1.0, &noisy, &mut r)
            })
            .collect(),
        arbiter: neuspin_cim::Arbiter::new(3, VariedParams::ideal(), &mut r),
        bias: vec![0.1, -0.2, 0.3, 0.0],
        out_features: 4,
        local: OpCounter::new(),
        ybuf: Vec::new(),
    });
    let digital_fc = HwBlock::DigitalFc(HwDigitalFc {
        weight: Tensor::from_fn(&[5, 12], |i| (i as f32 * 0.31).cos()),
        bias: vec![0.5, -0.5, 0.25, 0.0, 1.0],
        local: OpCounter::new(),
        weight_t: Tensor::default(),
    });
    let norm = HwBlock::Norm(HwNorm {
        gamma: vec![1.1, 0.9, 1.0],
        beta: vec![0.1, 0.0, -0.1],
        mean: vec![0.2, -0.3, 0.05],
        var: vec![1.5, 0.7, 1.0],
        stats: FeatureStats::default(),
        local: OpCounter::new(),
    });
    let inv_norm = HwBlock::InvNorm(HwInvNorm {
        gamma: vec![1.3, 0.7, 1.1],
        beta: vec![0.1, -0.2, 0.0],
        modules: Some((
            SpinDropModule::new(0.4, VariedParams::ideal(), &mut r),
            SpinDropModule::new(0.4, VariedParams::ideal(), &mut r),
        )),
        local: OpCounter::new(),
        abuf: Vec::new(),
    });
    let per_neuron = HwBlock::Dropout(HwDropout::PerNeuron {
        modules: (0..12).map(|_| SpinDropModule::new(0.3, VariedParams::ideal(), &mut r)).collect(),
        p: 0.3,
    });
    let per_channel = HwBlock::Dropout(HwDropout::PerChannel {
        modules: (0..3)
            .map(|_| neuspin_cim::SpatialDropModule::new(0.3, 2, VariedParams::ideal(), &mut r))
            .collect(),
        p: 0.3,
    });
    let scale = HwBlock::Dropout(HwDropout::Scale {
        module: ScaleDropModule::new(0.5, 3, VariedParams::ideal(), &mut r),
        scale: vec![0.8, 1.2, 1.0],
        local: OpCounter::new(),
    });
    let vi_scale = HwBlock::Dropout(HwDropout::ViScale {
        mu: vec![1.0, 0.9, 1.1],
        sigma: vec![0.1, 0.2, 0.05],
        bits_per_sample: 8,
        local: OpCounter::new(),
        scratch: Vec::new(),
    });

    let x_img = Tensor::from_fn(&[2, 2, 4, 4], |i| (i as f32 * 0.23).sin());
    let x_chan3 = Tensor::from_fn(&[2, 3, 2, 2], |i| (i as f32 * 0.41).cos());
    let x_flat12 = Tensor::from_fn(&[2, 12], |i| (i as f32 * 0.17).sin());
    let x_feat3 = Tensor::from_fn(&[4, 3], |i| (i as f32 * 0.29).cos());
    for stochastic in [false, true] {
        for (block, x) in [
            (&conv, &x_img),
            (&fc, &x_flat12),
            (&spinbayes, &x_flat12),
            (&digital_fc, &x_flat12),
            (&norm, &x_feat3),
            (&inv_norm, &x_feat3),
            (&per_neuron, &x_flat12),
            (&per_channel, &x_chan3),
            (&scale, &x_feat3),
            (&vi_scale, &x_feat3),
            (&HwBlock::HardTanh, &x_feat3),
            (&HwBlock::MaxPool(2), &x_img),
            (&HwBlock::Flatten, &x_img),
        ] {
            assert_into_twin(&mut block.clone(), x, stochastic);
        }
    }
}

#[test]
fn hw_digital_fc_matches_matmul() {
    let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    let mut block = HwDigitalFc {
        weight: w,
        bias: vec![0.5, -0.5],
        local: OpCounter::new(),
        weight_t: Tensor::default(),
    };
    let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
    let y = block.forward(&x);
    assert_eq!(y.as_slice(), &[3.5, 6.5]);
}
