//! Thermally-activated stochastic switching of spin-torque devices.
//!
//! In the thermal-activation (Néel–Brown) regime, a spin-torque current
//! `I` lowers the energy barrier of the free layer, and the probability
//! of switching within a pulse of duration `t` is
//!
//! ```text
//! P_sw(I, t) = 1 − exp( −(t / τ₀) · exp( −Δ · (1 − I / I_c0) ) )
//! ```
//!
//! where Δ is the thermal-stability factor and `I_c0` the intrinsic
//! critical current. Below `I_c0` the exponent is negative and switching
//! is rare; above it the barrier collapses and switching is fast. This
//! single expression gives the sigmoidal `P_sw(I)` curve that the
//! NeuSpin project exploits: biasing the device at a sub-critical
//! current turns it into a tunable Bernoulli sampler (the SpinDrop /
//! Scale-Drop / Arbiter random number source).

use crate::mtj::MtjParams;

/// The switching-probability model of one device instance.
///
/// Holds the (possibly variation-perturbed) Δ, `I_c0`, τ₀ triple and
/// evaluates `P_sw(I, t)` as well as its inverse (the current needed to
/// hit a target probability — used by the RNG calibration loop).
///
/// # Examples
///
/// ```
/// use neuspin_device::{MtjParams, SwitchingModel};
///
/// let m = SwitchingModel::from_params(&MtjParams::default());
/// let p_low = m.probability(0.5 * 40e-6, 10e-9);
/// let p_high = m.probability(1.5 * 40e-6, 10e-9);
/// assert!(p_low < 1e-6);
/// assert!(p_high > 0.999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingModel {
    thermal_stability: f64,
    critical_current: f64,
    attempt_time: f64,
}

impl SwitchingModel {
    /// Builds the model from explicit Δ, `I_c0` (A), τ₀ (s).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or non-finite.
    pub fn new(thermal_stability: f64, critical_current: f64, attempt_time: f64) -> Self {
        for (name, v) in [
            ("thermal_stability", thermal_stability),
            ("critical_current", critical_current),
            ("attempt_time", attempt_time),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be finite and positive, got {v}");
        }
        Self { thermal_stability, critical_current, attempt_time }
    }

    /// Builds the model from the corresponding [`MtjParams`] fields.
    pub fn from_params(params: &MtjParams) -> Self {
        Self::new(params.thermal_stability, params.critical_current, params.attempt_time)
    }

    /// Thermal-stability factor Δ.
    pub fn thermal_stability(&self) -> f64 {
        self.thermal_stability
    }

    /// Intrinsic critical current `I_c0` in amperes.
    pub fn critical_current(&self) -> f64 {
        self.critical_current
    }

    /// Attempt time τ₀ in seconds.
    pub fn attempt_time(&self) -> f64 {
        self.attempt_time
    }

    /// Probability that a pulse of amplitude `current` (A, magnitude) and
    /// duration `duration` (s) switches the free layer.
    ///
    /// Returns a value clamped to `[0, 1]`; zero current or zero duration
    /// gives exactly 0.
    pub fn probability(&self, current: f64, duration: f64) -> f64 {
        if current <= 0.0 || duration <= 0.0 {
            return 0.0;
        }
        let barrier = self.thermal_stability * (1.0 - current / self.critical_current);
        // Rate = (1/τ0)·exp(−barrier). Cap the exponent to avoid overflow
        // deep in the precessional regime (barrier very negative).
        let exponent = (-barrier).min(700.0);
        let rate = exponent.exp() / self.attempt_time;
        let p = 1.0 - (-rate * duration).exp();
        p.clamp(0.0, 1.0)
    }

    /// Inverse of [`probability`](Self::probability) in the current
    /// argument: the pulse amplitude that yields switching probability
    /// `p` at pulse width `duration`.
    ///
    /// This is the *design-time* calibration used to bias a device as a
    /// Bernoulli(p) sampler.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0, 1)` or `duration <= 0`.
    pub fn current_for_probability(&self, p: f64, duration: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
        assert!(duration > 0.0, "duration must be positive, got {duration}");
        // Invert: p = 1 − exp(−(t/τ0)·exp(−Δ(1 − I/Ic)))
        //   ⇒ exp(−Δ(1 − I/Ic)) = −ln(1−p)·τ0/t
        //   ⇒ I = Ic · (1 + ln(−ln(1−p)·τ0/t)/Δ)
        let k = -( -(1.0 - p).ln() * self.attempt_time / duration ).ln();
        self.critical_current * (1.0 - k / self.thermal_stability)
    }

    /// Mean switching time (inverse rate) at the given current, in
    /// seconds. Diverges (very large) for deeply sub-critical currents.
    pub fn mean_switching_time(&self, current: f64) -> f64 {
        let barrier = self.thermal_stability * (1.0 - current / self.critical_current);
        self.attempt_time * barrier.min(700.0).exp()
    }

    /// Data-retention probability: the chance an *unbiased* cell still
    /// holds its state after `seconds` (pure Néel–Brown relaxation,
    /// `P = exp(−t·f₀·e^{−Δ})`). With Δ ≈ 60 this is effectively 1 for
    /// any practical horizon — the non-volatility MRAM is prized for —
    /// and collapses quickly once Δ drops below ~40.
    pub fn retention_probability(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 1.0;
        }
        let rate = (-self.thermal_stability).max(-700.0).exp() / self.attempt_time;
        (-rate * seconds).exp()
    }

    /// The thermal-stability factor needed to retain data with
    /// probability `p` over `seconds` (the designer's retention-target
    /// inverse).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)` or `seconds <= 0`.
    pub fn stability_for_retention(p: f64, seconds: f64, attempt_time: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
        assert!(seconds > 0.0, "seconds must be positive");
        // p = exp(−t/τ0·e^{−Δ}) ⇒ Δ = ln(t / (τ0·(−ln p))).
        (seconds / (attempt_time * (-p.ln()))).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SwitchingModel {
        SwitchingModel::from_params(&MtjParams::default())
    }

    #[test]
    fn probability_is_monotone_in_current() {
        let m = model();
        let t = 10e-9;
        let mut last = -1.0;
        for i in 1..=60 {
            let current = i as f64 * 1e-6;
            let p = m.probability(current, t);
            assert!(p >= last, "P_sw must be monotone, broke at {current}");
            last = p;
        }
    }

    #[test]
    fn probability_is_monotone_in_duration() {
        let m = model();
        let i = 38e-6;
        let mut last = -1.0;
        for k in 1..=50 {
            let t = k as f64 * 1e-9;
            let p = m.probability(i, t);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn probability_bounds() {
        let m = model();
        assert_eq!(m.probability(0.0, 1e-9), 0.0);
        assert_eq!(m.probability(40e-6, 0.0), 0.0);
        assert_eq!(m.probability(-1.0, 1e-9), 0.0);
        assert!(m.probability(1.0, 1.0) <= 1.0);
        // Huge over-drive saturates to 1 without NaN/inf.
        let p = m.probability(1.0, 1e-3);
        assert!(p.is_finite() && (p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_transition_around_calibration_point() {
        // At I = Ic the rate is 1/τ0 = 1 GHz, so a 10 ns pulse switches
        // with probability ≈ 1 − e^{-10} ≈ 0.99995.
        let m = model();
        let p = m.probability(40e-6, 10e-9);
        assert!(p > 0.9999 && p < 1.0, "p = {p}");
    }

    #[test]
    fn inverse_roundtrips() {
        let m = model();
        let t = 10e-9;
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let i = m.current_for_probability(p, t);
            let back = m.probability(i, t);
            assert!(
                (back - p).abs() < 1e-9,
                "p = {p}: current {i} gives back {back}"
            );
        }
    }

    #[test]
    fn calibrated_current_is_subcritical_for_moderate_p() {
        let m = model();
        let i = m.current_for_probability(0.5, 10e-9);
        assert!(i < m.critical_current(), "p=0.5 bias must be sub-critical");
        assert!(i > 0.5 * m.critical_current());
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn inverse_rejects_p_one() {
        let _ = model().current_for_probability(1.0, 1e-9);
    }

    #[test]
    fn retention_is_essentially_perfect_at_delta_60() {
        let m = model();
        // Ten years.
        let ten_years = 10.0 * 365.25 * 24.0 * 3600.0;
        assert!(m.retention_probability(ten_years) > 0.999_999);
    }

    #[test]
    fn low_barrier_devices_lose_data() {
        let m = SwitchingModel::new(25.0, 40e-6, 1e-9);
        let year = 365.25 * 24.0 * 3600.0;
        assert!(m.retention_probability(year) < 0.9, "Δ=25 cannot hold a year");
        assert!(m.retention_probability(0.0) == 1.0);
    }

    #[test]
    fn retention_target_inverse_roundtrips() {
        let ten_years = 10.0 * 365.25 * 24.0 * 3600.0;
        let delta = SwitchingModel::stability_for_retention(0.999, ten_years, 1e-9);
        assert!(delta > 35.0 && delta < 60.0, "Δ = {delta}");
        let m = SwitchingModel::new(delta, 40e-6, 1e-9);
        let p = m.retention_probability(ten_years);
        assert!((p - 0.999).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn mean_switching_time_shrinks_with_current() {
        let m = model();
        assert!(m.mean_switching_time(20e-6) > m.mean_switching_time(40e-6));
        assert!(m.mean_switching_time(40e-6) > m.mean_switching_time(60e-6));
    }
}
