//! Self-contained probability distributions.
//!
//! The device models need Gaussian, lognormal, and Bernoulli sampling.
//! The implementations live in the workspace-vendored `rand` crate's
//! `dist` module (Box–Muller for the Gaussian, exactly two uniform
//! draws per sample) so that every crate shares one pinned,
//! bit-reproducible sampling path; this module re-exports them under
//! the historical `neuspin_device::stats` paths and keeps the
//! [`Running`] accumulator, which is a measurement tool rather than a
//! sampler.

pub use rand::dist::{standard_normal, ziggurat_normal, Bernoulli, Gaussian, LogNormal};

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Used throughout the workspace for measuring empirical switching
/// probabilities, read noise, and Monte-Carlo statistics without storing
/// the samples.
///
/// # Examples
///
/// ```
/// use neuspin_device::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.count(), 3);
/// assert!((r.variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 with fewer than two
    /// observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Self::new();
        r.extend(iter);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn gaussian_moments_match() {
        let g = Gaussian::new(3.0, 2.0);
        let mut rng = rng();
        let r: Running = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        assert!((r.mean() - 3.0).abs() < 0.05, "mean {}", r.mean());
        assert!((r.std() - 2.0).abs() < 0.05, "std {}", r.std());
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let g = Gaussian::new(5.0, 0.0);
        let mut rng = rng();
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn gaussian_rejects_negative_std() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn lognormal_median_is_preserved() {
        let d = LogNormal::from_median_sigma(5_000.0, 0.2);
        let mut rng = rng();
        let mut samples: Vec<f64> = (0..9_999).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        assert!((median / 5_000.0 - 1.0).abs() < 0.03, "median {median}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::from_median_sigma(1.0, 1.5);
        let mut rng = rng();
        assert!((0..1_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let b = Bernoulli::new(0.3);
        let mut rng = rng();
        let hits = (0..50_000).filter(|_| b.sample(&mut rng)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng();
        assert!((0..100).all(|_| !Bernoulli::new(0.0).sample(&mut rng)));
        assert!((0..100).all(|_| Bernoulli::new(1.0).sample(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn bernoulli_rejects_out_of_range() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn running_single_observation() {
        let r: Running = [42.0].into_iter().collect();
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.variance(), 0.0);
    }
}
