//! Self-contained probability distributions.
//!
//! The device models need Gaussian, lognormal, and Bernoulli sampling.
//! They are implemented here (Box–Muller for the Gaussian) instead of
//! pulling in `rand_distr`, so that the substrate stays dependency-light
//! and the sampling sequence is fully under our control (important for
//! bit-for-bit reproducible experiments).

use rand::{Rng, RngExt};

/// A Gaussian (normal) distribution `N(mean, std²)`.
///
/// Sampling uses the Box–Muller transform; each call to [`Gaussian::sample`]
/// consumes exactly two uniform draws from the supplied RNG, which keeps
/// the RNG stream position predictable.
///
/// # Examples
///
/// ```
/// use neuspin_device::stats::Gaussian;
/// use rand::SeedableRng;
///
/// let g = Gaussian::new(1.0, 0.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = g.sample(&mut rng);
/// assert!((x - 1.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0, got {std}");
        Self { mean, std }
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Returns the mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Returns the standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Self::standard()
    }
}

/// Draws a standard-normal variate via Box–Muller (two uniform draws).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A lognormal distribution: `exp(N(mu, sigma²))`.
///
/// Used for device-to-device resistance and thermal-stability variation,
/// which are multiplicative in nature (a device is "x % off nominal").
///
/// # Examples
///
/// ```
/// use neuspin_device::stats::LogNormal;
/// use rand::SeedableRng;
///
/// // Median 5 kΩ, 10 % relative sigma.
/// let d = LogNormal::from_median_sigma(5_000.0, 0.10);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let r = d.sample(&mut rng);
/// assert!(r > 2_000.0 && r < 12_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be finite and >= 0, got {sigma}");
        Self { mu, sigma }
    }

    /// Creates a lognormal whose *median* is `median` and whose
    /// log-domain standard deviation is `sigma` (≈ relative spread for
    /// small `sigma`).
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma < 0`.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        Self::new(median.ln(), sigma)
    }

    /// Returns the median (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Returns the log-domain sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// A Bernoulli distribution over `{true, false}`.
///
/// # Examples
///
/// ```
/// use neuspin_device::stats::Bernoulli;
/// use rand::SeedableRng;
///
/// let b = Bernoulli::new(0.25);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let _bit: bool = b.sample(&mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        Self { p }
    }

    /// Returns the success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random::<f64>() < self.p
    }
}

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Used throughout the workspace for measuring empirical switching
/// probabilities, read noise, and Monte-Carlo statistics without storing
/// the samples.
///
/// # Examples
///
/// ```
/// use neuspin_device::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.count(), 3);
/// assert!((r.variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 with fewer than two
    /// observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Self::new();
        r.extend(iter);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn gaussian_moments_match() {
        let g = Gaussian::new(3.0, 2.0);
        let mut rng = rng();
        let r: Running = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        assert!((r.mean() - 3.0).abs() < 0.05, "mean {}", r.mean());
        assert!((r.std() - 2.0).abs() < 0.05, "std {}", r.std());
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let g = Gaussian::new(5.0, 0.0);
        let mut rng = rng();
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn gaussian_rejects_negative_std() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn lognormal_median_is_preserved() {
        let d = LogNormal::from_median_sigma(5_000.0, 0.2);
        let mut rng = rng();
        let mut samples: Vec<f64> = (0..9_999).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        assert!((median / 5_000.0 - 1.0).abs() < 0.03, "median {median}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::from_median_sigma(1.0, 1.5);
        let mut rng = rng();
        assert!((0..1_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let b = Bernoulli::new(0.3);
        let mut rng = rng();
        let hits = (0..50_000).filter(|_| b.sample(&mut rng)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng();
        assert!((0..100).all(|_| !Bernoulli::new(0.0).sample(&mut rng)));
        assert!((0..100).all(|_| Bernoulli::new(1.0).sample(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn bernoulli_rejects_out_of_range() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn running_single_observation() {
        let r: Running = [42.0].into_iter().collect();
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.variance(), 0.0);
    }
}
