//! Temporal degradation of an MTJ cell population under a virtual
//! clock.
//!
//! The rest of `neuspin-device` models devices at a single instant;
//! this module makes a *population* of cells move through simulated
//! device-hours. Three wear-out physics act per time step:
//!
//! * **Retention flips** — pure Néel–Brown relaxation through
//!   [`SwitchingModel::retention_probability`]: over `dt` an unbiased
//!   cell loses its state with `1 − exp(−dt·e^{−Δ}/τ₀)`. The thermal
//!   stability Δ is modulated by the [`TemperatureProfile`]
//!   (`Δ(T) = Δ₀ · T_ref/T`, the first-order barrier-over-kT scaling),
//!   so hot intervals lose data much faster than cool ones.
//! * **Read disturb** — every read access nudges the free layer; a
//!   cell read `n` times flips with `1 − (1 − p_rd)^n`. The caller
//!   supplies the per-cell read count (in `neuspin-cim` it rides the
//!   crossbar's existing [`OpCounter`](crate::energy) tallies).
//! * **Write-endurance wear-out** — each cell carries a lognormal
//!   lifetime (in write cycles); once its cumulative writes exceed it,
//!   the cell freezes permanently (a stuck-at conversion upstream).
//!
//! On top of the discrete events, programmed conductances decay with a
//! common-mode rate plus per-cell lognormal jitter — the drift the
//! sense-margin health signal watches.
//!
//! ## Determinism: event-indexed RNG streams
//!
//! No ambient RNG is consumed. Every random decision draws from a
//! private stream keyed on `(master seed, epoch, cell index)`, where
//! the epoch is the [`AgingState::advance`] invocation counter. The
//! trajectory is therefore a pure function of the seed, the `dt`
//! sequence, and the per-epoch access counts — independent of thread
//! count, of how many predictions ran in between, and of every other
//! RNG stream in the workspace (the golden seed-42 streams are
//! untouched). Epoch 0 is reserved for fabrication-time draws (the
//! endurance lifetimes); advances use epochs 1, 2, …

use crate::stats::LogNormal;
use crate::switching::SwitchingModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Reference temperature (kelvin) at which
/// [`AgingConfig::thermal_stability`] is specified.
pub const REFERENCE_TEMPERATURE: f64 = 300.0;

/// Ambient temperature as a function of the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemperatureProfile {
    /// Constant ambient temperature (kelvin).
    Constant(f64),
    /// Sinusoidal (e.g. diurnal) cycle around `base` kelvin:
    /// `T(t) = base + swing · sin(2π · t / period_hours)`.
    Cycle {
        /// Mean temperature (kelvin).
        base: f64,
        /// Peak deviation from the mean (kelvin).
        swing: f64,
        /// Cycle period in device-hours.
        period_hours: f64,
    },
}

impl TemperatureProfile {
    /// Temperature (kelvin) at virtual time `hours`.
    pub fn at(&self, hours: f64) -> f64 {
        match *self {
            TemperatureProfile::Constant(t) => t,
            TemperatureProfile::Cycle { base, swing, period_hours } => {
                base + swing * (2.0 * std::f64::consts::PI * hours / period_hours).sin()
            }
        }
    }

    fn validate(&self) {
        match *self {
            TemperatureProfile::Constant(t) => {
                assert!(t.is_finite() && t > 0.0, "temperature must be positive, got {t}");
            }
            TemperatureProfile::Cycle { base, swing, period_hours } => {
                assert!(base.is_finite() && base > 0.0, "base temperature must be positive");
                assert!(swing.is_finite() && swing >= 0.0 && swing < base,
                        "swing must be in [0, base)");
                assert!(period_hours.is_finite() && period_hours > 0.0,
                        "period must be positive");
            }
        }
    }
}

/// Tuning of the temporal degradation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingConfig {
    /// Master seed of the event-indexed RNG streams.
    pub seed: u64,
    /// Thermal stability Δ₀ at [`REFERENCE_TEMPERATURE`]. 60 is the
    /// ten-year-retention design point; low-barrier corners (Δ ≲ 35)
    /// lose data within simulated hours.
    pub thermal_stability: f64,
    /// Néel–Brown attempt time τ₀, seconds.
    pub attempt_time: f64,
    /// Ambient temperature over the virtual clock.
    pub temperature: TemperatureProfile,
    /// Per-read-access disturb flip probability (0 disables).
    pub read_disturb: f64,
    /// Median cell lifetime in write cycles (lognormal across cells).
    pub endurance_median: f64,
    /// Lognormal sigma of the endurance lifetimes.
    pub endurance_sigma: f64,
    /// Common-mode conductance decay rate per device-hour (0 disables;
    /// the programmed level decays as `e^{−rate·t}` until refreshed).
    pub drift_rate: f64,
    /// Per-cell lognormal drift jitter per √hour (0 = pure
    /// common-mode).
    pub drift_sigma: f64,
    /// Write-verify loops a scrub performs per cell — the configurable
    /// energy cost of the refresh path (each loop is a full
    /// write + verify tally upstream).
    pub scrub_passes: u32,
}

impl Default for AgingConfig {
    /// A healthy part at room temperature: ten-year retention barrier,
    /// no read disturb, effectively unlimited endurance, no drift.
    fn default() -> Self {
        Self {
            seed: 0,
            thermal_stability: 60.0,
            attempt_time: 1e-9,
            temperature: TemperatureProfile::Constant(REFERENCE_TEMPERATURE),
            read_disturb: 0.0,
            endurance_median: 1e15,
            endurance_sigma: 0.3,
            drift_rate: 0.0,
            drift_sigma: 0.0,
            scrub_passes: 1,
        }
    }
}

impl AgingConfig {
    /// Validates the tuning.
    ///
    /// # Panics
    ///
    /// Panics if any rate/scale is out of range.
    pub fn validate(&self) {
        assert!(self.thermal_stability.is_finite() && self.thermal_stability > 0.0,
                "thermal stability must be positive");
        assert!(self.attempt_time.is_finite() && self.attempt_time > 0.0,
                "attempt time must be positive");
        self.temperature.validate();
        assert!(self.read_disturb.is_finite() && (0.0..1.0).contains(&self.read_disturb),
                "read_disturb must be in [0, 1)");
        assert!(self.endurance_median.is_finite() && self.endurance_median > 0.0,
                "endurance median must be positive");
        assert!(self.endurance_sigma.is_finite() && self.endurance_sigma >= 0.0,
                "endurance sigma must be >= 0");
        assert!(self.drift_rate.is_finite() && self.drift_rate >= 0.0,
                "drift rate must be >= 0");
        assert!(self.drift_sigma.is_finite() && self.drift_sigma >= 0.0,
                "drift sigma must be >= 0");
        assert!(self.scrub_passes >= 1, "scrub needs at least one write pass");
    }

    /// The temperature-modulated thermal stability at virtual time
    /// `hours`: `Δ(T) = Δ₀ · T_ref / T` (barrier energy over kT).
    pub fn stability_at(&self, hours: f64) -> f64 {
        self.thermal_stability * (REFERENCE_TEMPERATURE / self.temperature.at(hours))
    }
}

/// The private RNG stream of one `(epoch, cell)` event. Seeding runs
/// the same SplitMix64 expansion every stream in the workspace uses;
/// the two odd multipliers decorrelate the epoch and cell axes (the
/// golden-ratio constant is the workspace's standard stage-tag mixer).
fn event_rng(seed: u64, epoch: u64, cell: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ cell.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    )
}

/// What happened to the population during one [`AgingState::advance`]:
/// cell indices per event class, in ascending (deterministic) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AgingStepReport {
    /// Cells that lost their state to thermal relaxation.
    pub retention_flips: Vec<usize>,
    /// Cells flipped by accumulated read disturb.
    pub disturb_flips: Vec<usize>,
    /// Cells that crossed their endurance lifetime this step (newly
    /// worn out — permanent).
    pub wear_outs: Vec<usize>,
}

impl AgingStepReport {
    /// Collapses the step into count form.
    pub fn summary(&self, hours: f64) -> AgingReport {
        AgingReport {
            hours,
            retention_flips: self.retention_flips.len(),
            disturb_flips: self.disturb_flips.len(),
            wear_outs: self.wear_outs.len(),
        }
    }
}

/// Count-form aging summary, mergeable across arrays and steps.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgingReport {
    /// Virtual time covered, device-hours.
    pub hours: f64,
    /// Retention (Néel–Brown) flips.
    pub retention_flips: usize,
    /// Read-disturb flips.
    pub disturb_flips: usize,
    /// Newly worn-out (stuck-at-converted) cells.
    pub wear_outs: usize,
}

impl AgingReport {
    /// Folds another report in (parallel arrays share the clock, so
    /// `hours` takes the maximum rather than summing).
    pub fn merge(&mut self, other: &AgingReport) {
        self.hours = self.hours.max(other.hours);
        self.retention_flips += other.retention_flips;
        self.disturb_flips += other.disturb_flips;
        self.wear_outs += other.wear_outs;
    }

    /// Total soft flips (retention + disturb).
    pub fn total_flips(&self) -> usize {
        self.retention_flips + self.disturb_flips
    }
}

/// The full mutable state of an [`AgingState`], as plain data — what a
/// crash-safe checkpoint must carry to resume the virtual clock and the
/// event-indexed RNG streams exactly where they stopped.
///
/// The tuning ([`AgingConfig`]) is *not* part of the snapshot: it is
/// fabrication-time configuration, reconstructed by rebuilding the die
/// from the same deterministic constructor. Restoring a snapshot onto a
/// twin built with the same config makes every subsequent
/// [`AgingState::advance`] draw from the same `(seed, epoch, cell)`
/// streams the uninterrupted run would have used.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingSnapshot {
    /// Virtual clock, device-hours since fabrication.
    pub now_hours: f64,
    /// Completed advance epochs (the event-RNG stream position).
    pub epoch: u64,
    /// Mean cumulative writes per cell.
    pub cum_writes: f64,
    /// Per-cell endurance lifetimes (mutated by cell replacement).
    pub lifetimes: Vec<f64>,
    /// Per-cell cumulative conductance drift factors.
    pub drift: Vec<f64>,
    /// Worn-out flags.
    pub worn: Vec<bool>,
}

/// Temporal state of a population of `n` cells: the virtual clock,
/// per-cell endurance lifetimes and cumulative drift factors, and the
/// worn-out set.
#[derive(Debug, Clone)]
pub struct AgingState {
    config: AgingConfig,
    now_hours: f64,
    epoch: u64,
    /// Mean cumulative writes per cell (writes are array-uniform:
    /// programming always sweeps the whole array upstream).
    cum_writes: f64,
    /// Per-cell endurance lifetime in write cycles (lognormal, drawn at
    /// fabrication from epoch-0 streams).
    lifetimes: Vec<f64>,
    /// Per-cell cumulative conductance drift factor (1 = as
    /// programmed; reset by a scrub).
    drift: Vec<f64>,
    worn: Vec<bool>,
}

impl AgingState {
    /// Fabricates the temporal state of `cells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or the config fails
    /// [`AgingConfig::validate`].
    pub fn new(cells: usize, config: AgingConfig) -> Self {
        assert!(cells > 0, "need at least one cell");
        config.validate();
        let dist = LogNormal::from_median_sigma(
            config.endurance_median,
            config.endurance_sigma.max(1e-12),
        );
        let lifetimes = (0..cells)
            .map(|i| dist.sample(&mut event_rng(config.seed, 0, i as u64)))
            .collect();
        Self {
            config,
            now_hours: 0.0,
            epoch: 0,
            cum_writes: 0.0,
            lifetimes,
            drift: vec![1.0; cells],
            worn: vec![false; cells],
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &AgingConfig {
        &self.config
    }

    /// Population size.
    pub fn cells(&self) -> usize {
        self.drift.len()
    }

    /// The virtual clock, device-hours since fabrication.
    pub fn now_hours(&self) -> f64 {
        self.now_hours
    }

    /// Completed [`AgingState::advance`] epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cumulative conductance drift factor of cell `i`.
    pub fn drift(&self, i: usize) -> f64 {
        self.drift[i]
    }

    /// Whether cell `i` has exceeded its endurance lifetime.
    pub fn is_worn(&self, i: usize) -> bool {
        self.worn[i]
    }

    /// Number of worn-out cells.
    pub fn worn_count(&self) -> usize {
        self.worn.iter().filter(|&&w| w).count()
    }

    /// Mean cumulative writes per cell so far.
    pub fn cum_writes(&self) -> f64 {
        self.cum_writes
    }

    /// Advances the virtual clock by `dt_hours`, sampling retention
    /// flips at the temperature-modulated Δ, read-disturb flips from
    /// `reads_per_cell` accesses accumulated since the last advance,
    /// endurance wear from `writes_per_cell` write cycles, and the
    /// conductance drift factors. Worn-out cells no longer flip (they
    /// are frozen).
    ///
    /// # Panics
    ///
    /// Panics if `dt_hours` is not positive and finite, or either
    /// access count is negative/non-finite.
    pub fn advance(
        &mut self,
        dt_hours: f64,
        reads_per_cell: f64,
        writes_per_cell: f64,
    ) -> AgingStepReport {
        assert!(dt_hours.is_finite() && dt_hours > 0.0, "dt must be positive, got {dt_hours}");
        assert!(reads_per_cell.is_finite() && reads_per_cell >= 0.0, "bad read count");
        assert!(writes_per_cell.is_finite() && writes_per_cell >= 0.0, "bad write count");
        self.epoch += 1;

        // Midpoint temperature of the interval sets the barrier.
        let delta = self.config.stability_at(self.now_hours + 0.5 * dt_hours);
        let switching = SwitchingModel::new(delta, 1e-6, self.config.attempt_time);
        let p_retention = 1.0 - switching.retention_probability(dt_hours * 3600.0);
        let p_disturb = if self.config.read_disturb > 0.0 && reads_per_cell > 0.0 {
            1.0 - (1.0 - self.config.read_disturb).powf(reads_per_cell)
        } else {
            0.0
        };
        self.cum_writes += writes_per_cell;
        let common_decay = (-self.config.drift_rate * dt_hours).exp();
        let jitter_scale = self.config.drift_sigma * dt_hours.sqrt();

        let mut report = AgingStepReport::default();
        for i in 0..self.drift.len() {
            // Fixed three-draw schedule per (epoch, cell) stream, so
            // the trajectory never depends on which branches fire.
            let mut rng = event_rng(self.config.seed, self.epoch, i as u64);
            let u_retention: f64 = rng.random();
            let u_disturb: f64 = rng.random();
            let z = crate::stats::standard_normal(&mut rng);

            let jitter = if jitter_scale > 0.0 { (jitter_scale * z).exp() } else { 1.0 };
            self.drift[i] *= common_decay * jitter;

            if self.worn[i] {
                continue;
            }
            if self.cum_writes > self.lifetimes[i] {
                self.worn[i] = true;
                report.wear_outs.push(i);
                continue;
            }
            if u_retention < p_retention {
                report.retention_flips.push(i);
            } else if u_disturb < p_disturb {
                report.disturb_flips.push(i);
            }
        }
        self.now_hours += dt_hours;
        report
    }

    /// Records a scrub: reprogramming restores every programmed
    /// conductance, so the drift factors reset to 1. Worn-out cells
    /// stay worn — endurance damage is permanent.
    pub fn reset_drift(&mut self) {
        self.drift.fill(1.0);
    }

    /// Exports the full mutable state for checkpointing.
    pub fn snapshot(&self) -> AgingSnapshot {
        AgingSnapshot {
            now_hours: self.now_hours,
            epoch: self.epoch,
            cum_writes: self.cum_writes,
            lifetimes: self.lifetimes.clone(),
            drift: self.drift.clone(),
            worn: self.worn.clone(),
        }
    }

    /// Overwrites the mutable state from a snapshot taken on a
    /// population of the same size (see [`AgingSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's population size differs from this one.
    pub fn restore(&mut self, snapshot: &AgingSnapshot) {
        assert_eq!(
            snapshot.lifetimes.len(),
            self.lifetimes.len(),
            "aging snapshot population mismatch"
        );
        assert_eq!(snapshot.drift.len(), self.drift.len());
        assert_eq!(snapshot.worn.len(), self.worn.len());
        self.now_hours = snapshot.now_hours;
        self.epoch = snapshot.epoch;
        self.cum_writes = snapshot.cum_writes;
        self.lifetimes.clone_from(&snapshot.lifetimes);
        self.drift.clone_from(&snapshot.drift);
        self.worn.clone_from(&snapshot.worn);
    }

    /// Records that cell `i` was physically replaced (e.g. fused to a
    /// spare column): drift resets, wear clears, and the replacement
    /// receives a fresh endurance budget starting from the current
    /// cumulative write count. The budget draw is keyed on the current
    /// epoch plus a high-bit cell offset, so it is deterministic yet
    /// distinct from both the fabrication draw and every advance
    /// stream.
    pub fn replace_cell(&mut self, i: usize) {
        self.drift[i] = 1.0;
        self.worn[i] = false;
        let dist = LogNormal::from_median_sigma(
            self.config.endurance_median,
            self.config.endurance_sigma.max(1e-12),
        );
        let mut rng =
            event_rng(self.config.seed, self.epoch, i as u64 ^ 0x8000_0000_0000_0000);
        self.lifetimes[i] = self.cum_writes + dist.sample(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> AgingConfig {
        AgingConfig {
            seed: 42,
            thermal_stability: 31.0, // retention collapses within hours
            ..AgingConfig::default()
        }
    }

    #[test]
    fn stable_devices_do_not_flip() {
        let mut state = AgingState::new(512, AgingConfig { seed: 7, ..AgingConfig::default() });
        let report = state.advance(1000.0, 1e4, 0.0);
        assert!(report.retention_flips.is_empty(), "Δ=60 must retain for any horizon");
        assert!(report.disturb_flips.is_empty(), "read disturb disabled by default");
        assert!(report.wear_outs.is_empty());
        assert_eq!(state.now_hours(), 1000.0);
    }

    #[test]
    fn low_barrier_population_loses_data() {
        let mut state = AgingState::new(2000, fast_config());
        let report = state.advance(4.0, 0.0, 0.0);
        let expected = 1.0
            - SwitchingModel::new(31.0, 1e-6, 1e-9).retention_probability(4.0 * 3600.0);
        let observed = report.retention_flips.len() as f64 / 2000.0;
        assert!(
            (observed - expected).abs() < 0.05,
            "flip fraction {observed} should track Néel–Brown {expected}"
        );
    }

    #[test]
    fn hot_intervals_flip_more() {
        let hot = AgingConfig {
            temperature: TemperatureProfile::Constant(360.0),
            ..fast_config()
        };
        let mut cool_state = AgingState::new(2000, fast_config());
        let mut hot_state = AgingState::new(2000, hot);
        let cool = cool_state.advance(1.0, 0.0, 0.0).retention_flips.len();
        let hot = hot_state.advance(1.0, 0.0, 0.0).retention_flips.len();
        assert!(hot > 2 * cool.max(1), "360 K ({hot} flips) must outpace 300 K ({cool})");
    }

    #[test]
    fn temperature_cycle_modulates_stability() {
        let config = AgingConfig {
            temperature: TemperatureProfile::Cycle { base: 300.0, swing: 50.0, period_hours: 24.0 },
            ..AgingConfig::default()
        };
        // Peak of the sine (t = 6 h) is hottest → lowest Δ.
        let peak = config.stability_at(6.0);
        let trough = config.stability_at(18.0);
        let mean = config.stability_at(0.0);
        assert!(peak < mean && mean < trough);
        assert!((mean - 60.0).abs() < 1e-9, "at base temperature Δ is nominal");
    }

    #[test]
    fn read_disturb_accumulates_with_accesses() {
        let config = AgingConfig { read_disturb: 1e-4, ..AgingConfig::default() };
        let mut quiet = AgingState::new(2000, config.clone());
        let mut busy = AgingState::new(2000, config);
        let q = quiet.advance(1.0, 10.0, 0.0).disturb_flips.len();
        let b = busy.advance(1.0, 5_000.0, 0.0).disturb_flips.len();
        assert!(b > q, "5000 reads/cell ({b} flips) must disturb more than 10 ({q})");
        let expected = 1.0 - (1.0 - 1e-4f64).powf(5_000.0);
        let observed = b as f64 / 2000.0;
        assert!((observed - expected).abs() < 0.05, "disturb fraction {observed} vs {expected}");
    }

    #[test]
    fn endurance_wears_out_around_the_median() {
        let config = AgingConfig {
            endurance_median: 1_000.0,
            endurance_sigma: 0.2,
            ..AgingConfig::default()
        };
        let mut state = AgingState::new(1000, config);
        let early = state.advance(1.0, 0.0, 100.0).wear_outs.len();
        assert_eq!(early, 0, "100 writes is far below the 1000-cycle median");
        let mut total = early;
        for _ in 0..39 {
            total += state.advance(1.0, 0.0, 100.0).wear_outs.len();
        }
        // 4000 cumulative writes: essentially the whole population.
        assert!(total > 900, "most cells must wear out by 4× the median, got {total}");
        assert_eq!(state.worn_count(), total);
        // Worn cells never flip again even at a hot corner.
        let report = state.advance(10.0, 0.0, 0.0);
        assert!(report.retention_flips.len() <= 1000 - total);
    }

    #[test]
    fn drift_decays_and_scrub_restores() {
        let config = AgingConfig { drift_rate: 0.1, drift_sigma: 0.05, ..AgingConfig::default() };
        let mut state = AgingState::new(64, config);
        state.advance(2.0, 0.0, 0.0);
        let mean: f64 = (0..64).map(|i| state.drift(i)).sum::<f64>() / 64.0;
        let expected = (-0.1f64 * 2.0).exp();
        assert!((mean - expected).abs() < 0.05, "mean drift {mean} vs common mode {expected}");
        assert!((0..64).any(|i| (state.drift(i) - mean).abs() > 1e-6), "jitter is per-cell");
        state.reset_drift();
        assert!((0..64).all(|i| state.drift(i) == 1.0));
    }

    #[test]
    fn trajectories_are_event_indexed_and_reproducible() {
        let mk = || AgingState::new(256, AgingConfig { read_disturb: 1e-3, ..fast_config() });
        let mut a = mk();
        let mut b = mk();
        let ra1 = a.advance(1.0, 100.0, 0.0);
        let rb1 = b.advance(1.0, 100.0, 0.0);
        assert_eq!(ra1, rb1, "same seed + schedule ⇒ same events");
        // Interleaving unrelated RNG draws cannot perturb the stream.
        let mut ambient = StdRng::seed_from_u64(999);
        let _: f64 = ambient.random();
        let ra2 = a.advance(1.0, 100.0, 0.0);
        let rb2 = b.advance(1.0, 100.0, 0.0);
        assert_eq!(ra2, rb2);
        assert_ne!(ra1, ra2, "each epoch has its own stream");
    }

    #[test]
    fn replaced_cell_gets_fresh_endurance_budget() {
        let config = AgingConfig {
            endurance_median: 100.0,
            endurance_sigma: 0.1,
            ..AgingConfig::default()
        };
        let mut state = AgingState::new(8, config);
        state.advance(1.0, 0.0, 500.0); // 5× the median: everything wears out
        assert_eq!(state.worn_count(), 8);
        state.replace_cell(3);
        assert!(!state.is_worn(3));
        assert_eq!(state.drift(3), 1.0);
        let report = state.advance(1.0, 0.0, 10.0);
        assert!(report.wear_outs.is_empty(), "the fresh budget covers 10 writes");
        let report = state.advance(1.0, 0.0, 500.0);
        assert_eq!(report.wear_outs, vec![3], "the replacement wears out in turn");
    }

    #[test]
    fn snapshot_restore_resumes_event_streams_bit_exactly() {
        let mk = || AgingState::new(128, AgingConfig {
            read_disturb: 1e-3,
            drift_rate: 0.05,
            drift_sigma: 0.02,
            endurance_median: 400.0,
            ..fast_config()
        });
        let mut a = mk();
        a.advance(1.0, 50.0, 100.0);
        a.replace_cell(7);
        a.advance(0.5, 20.0, 150.0);
        let snap = a.snapshot();
        // Restore onto a twin built by the same constructor.
        let mut b = mk();
        b.restore(&snap);
        let ra = a.advance(2.0, 80.0, 200.0);
        let rb = b.advance(2.0, 80.0, 200.0);
        assert_eq!(ra, rb, "restored twin must replay the same events");
        for i in 0..128 {
            assert_eq!(a.drift(i).to_bits(), b.drift(i).to_bits(), "cell {i}");
            assert_eq!(a.is_worn(i), b.is_worn(i), "cell {i}");
        }
        assert_eq!(a.now_hours().to_bits(), b.now_hours().to_bits());
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    #[should_panic(expected = "population mismatch")]
    fn restore_rejects_population_mismatch() {
        let snap = AgingState::new(8, AgingConfig::default()).snapshot();
        AgingState::new(16, AgingConfig::default()).restore(&snap);
    }

    #[test]
    fn reports_merge() {
        let mut total = AgingReport::default();
        total.merge(&AgingReport { hours: 2.0, retention_flips: 3, disturb_flips: 1, wear_outs: 0 });
        total.merge(&AgingReport { hours: 2.0, retention_flips: 2, disturb_flips: 0, wear_outs: 4 });
        assert_eq!(total.hours, 2.0, "parallel arrays share the clock");
        assert_eq!(total.retention_flips, 5);
        assert_eq!(total.total_flips(), 6);
        assert_eq!(total.wear_outs, 4);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn advance_rejects_zero_dt() {
        AgingState::new(4, AgingConfig::default()).advance(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "read_disturb must be in [0, 1)")]
    fn config_rejects_bad_disturb() {
        AgingConfig { read_disturb: 1.5, ..AgingConfig::default() }.validate();
    }
}
