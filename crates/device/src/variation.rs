//! Device-to-device and cycle-to-cycle variation models.
//!
//! Manufacturing variation makes every fabricated MTJ slightly different
//! from the nominal design: resistance, TMR, thermal stability, and
//! critical current all spread (multiplicatively, hence lognormal).
//! NeuSpin's central thesis is that BayNNs *tolerate and even exploit*
//! this variation; the experiments sweep these sigmas.

use crate::mtj::MtjParams;
use crate::stats::LogNormal;
use rand::Rng;

/// Relative (log-domain) sigmas of the per-device parameter spreads.
///
/// Each field is the lognormal sigma applied multiplicatively to the
/// corresponding nominal parameter when a device instance is drawn.
/// A value of `0.05` means roughly a 5 % relative spread.
///
/// # Examples
///
/// ```
/// use neuspin_device::{MtjParams, VariationModel};
/// use rand::SeedableRng;
///
/// let var = VariationModel::typical();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let dev = var.draw(&MtjParams::default(), &mut rng);
/// assert!(dev.resistance_parallel > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Lognormal sigma of the parallel resistance.
    pub sigma_resistance: f64,
    /// Lognormal sigma of the TMR ratio.
    pub sigma_tmr: f64,
    /// Lognormal sigma of the thermal-stability factor Δ.
    pub sigma_thermal_stability: f64,
    /// Lognormal sigma of the critical current `I_c0`.
    pub sigma_critical_current: f64,
    /// Additional *cycle-to-cycle* relative jitter applied to every
    /// conductance read beyond the per-device offset (gaussian sigma).
    pub sigma_cycle: f64,
}

impl VariationModel {
    /// No variation at all: every device is exactly nominal.
    pub fn none() -> Self {
        Self {
            sigma_resistance: 0.0,
            sigma_tmr: 0.0,
            sigma_thermal_stability: 0.0,
            sigma_critical_current: 0.0,
            sigma_cycle: 0.0,
        }
    }

    /// Typical fabricated-wafer spreads (≈ 5 % R, 5 % TMR, 3 % Δ,
    /// 5 % `I_c0`, 1 % cycle-to-cycle), in line with the SPINTEC
    /// characterisation data the paper refers to.
    pub fn typical() -> Self {
        Self {
            sigma_resistance: 0.05,
            sigma_tmr: 0.05,
            sigma_thermal_stability: 0.03,
            sigma_critical_current: 0.05,
            sigma_cycle: 0.01,
        }
    }

    /// A uniform relative spread `sigma` on all four device parameters
    /// (cycle-to-cycle left at `sigma / 5`). Used by the variation-sweep
    /// experiments.
    pub fn uniform(sigma: f64) -> Self {
        Self {
            sigma_resistance: sigma,
            sigma_tmr: sigma,
            sigma_thermal_stability: sigma,
            sigma_critical_current: sigma,
            sigma_cycle: sigma / 5.0,
        }
    }

    /// Draws one device instance's parameters around the nominal set.
    pub fn draw<R: Rng + ?Sized>(&self, nominal: &MtjParams, rng: &mut R) -> MtjParams {
        let scale = |nominal_value: f64, sigma: f64, rng: &mut R| -> f64 {
            if sigma == 0.0 {
                nominal_value
            } else {
                LogNormal::from_median_sigma(nominal_value, sigma).sample(rng)
            }
        };
        MtjParams {
            resistance_parallel: scale(nominal.resistance_parallel, self.sigma_resistance, rng),
            tmr: scale(nominal.tmr, self.sigma_tmr, rng),
            thermal_stability: scale(nominal.thermal_stability, self.sigma_thermal_stability, rng),
            critical_current: scale(nominal.critical_current, self.sigma_critical_current, rng),
            attempt_time: nominal.attempt_time,
            pulse_width: nominal.pulse_width,
            read_noise: (nominal.read_noise.powi(2) + self.sigma_cycle.powi(2)).sqrt(),
        }
    }
}

impl Default for VariationModel {
    /// Defaults to [`VariationModel::typical`].
    fn default() -> Self {
        Self::typical()
    }
}

/// A nominal parameter set together with its variation model — the
/// "process corner" handed to array constructors.
///
/// # Examples
///
/// ```
/// use neuspin_device::{MtjParams, VariationModel, VariedParams};
/// use rand::SeedableRng;
///
/// let corner = VariedParams::new(MtjParams::default(), VariationModel::typical());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let device = corner.instantiate(&mut rng);
/// assert!(device.params().tmr > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VariedParams {
    /// Design-time nominal parameters.
    pub nominal: MtjParams,
    /// Process spread around the nominal.
    pub variation: VariationModel,
}

impl VariedParams {
    /// Bundles a nominal parameter set with a variation model.
    pub fn new(nominal: MtjParams, variation: VariationModel) -> Self {
        Self { nominal, variation }
    }

    /// An ideal corner: nominal parameters, zero variation.
    pub fn ideal() -> Self {
        Self::new(MtjParams::default(), VariationModel::none())
    }

    /// Draws a full device instance.
    pub fn instantiate<R: Rng + ?Sized>(&self, rng: &mut R) -> crate::Mtj {
        crate::Mtj::nominal(self.variation.draw(&self.nominal, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Running;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_variation_reproduces_nominal() {
        let mut rng = StdRng::seed_from_u64(1);
        let nominal = MtjParams::default();
        let drawn = VariationModel::none().draw(&nominal, &mut rng);
        assert_eq!(drawn, nominal);
    }

    #[test]
    fn spread_matches_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let nominal = MtjParams::default();
        let var = VariationModel::uniform(0.10);
        let r: Running = (0..5_000)
            .map(|_| var.draw(&nominal, &mut rng).resistance_parallel.ln())
            .collect();
        assert!((r.std() - 0.10).abs() < 0.01, "log-std {}", r.std());
        assert!((r.mean() - nominal.resistance_parallel.ln()).abs() < 0.01);
    }

    #[test]
    fn drawn_devices_are_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let var = VariationModel::uniform(0.3);
        let nominal = MtjParams::default();
        for _ in 0..500 {
            let p = var.draw(&nominal, &mut rng);
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn cycle_sigma_folds_into_read_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let var = VariationModel { sigma_cycle: 0.03, ..VariationModel::none() };
        let p = var.draw(&MtjParams::default(), &mut rng);
        let expected = (0.01f64.powi(2) + 0.03f64.powi(2)).sqrt();
        assert!((p.read_noise - expected).abs() < 1e-12);
    }

    #[test]
    fn instantiate_produces_distinct_devices() {
        let corner = VariedParams::new(MtjParams::default(), VariationModel::typical());
        let mut rng = StdRng::seed_from_u64(5);
        let a = corner.instantiate(&mut rng);
        let b = corner.instantiate(&mut rng);
        assert_ne!(a.params().resistance_parallel, b.params().resistance_parallel);
    }
}
