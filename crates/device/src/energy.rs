//! Per-event device energy constants.
//!
//! The workspace-wide energy model ([`neuspin-energy`]) builds its
//! totals from these device-level event energies. Values are taken from
//! the MRAM / CIM literature the paper cites (Lee et al. IEDM'22 for the
//! MRAM energies; ISSCC survey data for the peripheral circuits) and are
//! design-time constants, not measurements.
//!
//! [`neuspin-energy`]: ../../neuspin_energy/index.html


/// Energy cost of the primitive device events, in joules.
///
/// # Examples
///
/// ```
/// use neuspin_device::DeviceEnergy;
///
/// let e = DeviceEnergy::default();
/// // One RNG bit = stochastic write attempt + sense read + reset write.
/// let per_bit = e.rng_bit();
/// assert!(per_bit > e.read && per_bit < 2e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEnergy {
    /// One sense-path read of a single cell (J).
    pub read: f64,
    /// One SOT write pulse (J) — current through the heavy-metal track.
    pub write_sot: f64,
    /// One STT write pulse (J) — current through the barrier.
    pub write_stt: f64,
    /// One sense-amplifier evaluation (J).
    pub sense_amp: f64,
    /// One 4-bit column ADC conversion (J).
    pub adc_4bit: f64,
    /// One SRAM word access (J) — used for scale-vector storage.
    pub sram_access: f64,
    /// One digital accumulate / shift-add operation (J).
    pub digital_acc: f64,
}

impl Default for DeviceEnergy {
    fn default() -> Self {
        Self {
            read: 25e-15,
            write_sot: 300e-15,
            write_stt: 450e-15,
            sense_amp: 8e-15,
            adc_4bit: 90e-15,
            sram_access: 20e-15,
            digital_acc: 2e-15,
        }
    }
}

impl DeviceEnergy {
    /// Energy of one random bit from a [`crate::SpinRng`]: a stochastic
    /// SOT write attempt, a sense read, and a reset write.
    pub fn rng_bit(&self) -> f64 {
        self.write_sot + self.read + self.sense_amp + self.write_sot
    }

    /// Energy of programming one binary cell (write-verified: write +
    /// verify read).
    pub fn program_cell(&self) -> f64 {
        self.write_sot + self.read
    }

    /// Energy of one crossbar column evaluation sensing `rows` cells in
    /// parallel followed by an ADC conversion.
    pub fn column_read(&self, rows: usize) -> f64 {
        rows as f64 * self.read + self.sense_amp + self.adc_4bit
    }

    /// Validates all constants are finite and positive.
    ///
    /// # Errors
    ///
    /// Returns the name of the first non-positive / non-finite field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("read", self.read),
            ("write_sot", self.write_sot),
            ("write_stt", self.write_stt),
            ("sense_amp", self.sense_amp),
            ("adc_4bit", self.adc_4bit),
            ("sram_access", self.sram_access),
            ("digital_acc", self.digital_acc),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(DeviceEnergy::default().validate().is_ok());
    }

    #[test]
    fn rng_bit_dominated_by_writes() {
        let e = DeviceEnergy::default();
        assert!(e.rng_bit() > 2.0 * e.write_sot);
        assert!(e.rng_bit() < 3.0 * e.write_sot);
    }

    #[test]
    fn column_read_scales_with_rows() {
        let e = DeviceEnergy::default();
        let small = e.column_read(16);
        let big = e.column_read(256);
        assert!(big > small);
        assert!((big - small - 240.0 * e.read).abs() < 1e-20);
    }

    #[test]
    fn validate_catches_bad_field() {
        let e = DeviceEnergy { read: 0.0, ..DeviceEnergy::default() };
        assert!(e.validate().is_err());
        let e = DeviceEnergy { adc_4bit: f64::NAN, ..DeviceEnergy::default() };
        assert!(e.validate().is_err());
    }

    #[test]
    fn sot_write_cheaper_than_stt() {
        let e = DeviceEnergy::default();
        assert!(e.write_sot < e.write_stt, "SOT writes avoid the barrier");
    }
}
