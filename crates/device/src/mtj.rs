//! The magnetic tunnel junction (MTJ) model.
//!
//! An MTJ is two ferromagnetic layers (free layer and reference layer)
//! separated by a thin tunnel barrier. The relative magnetisation —
//! parallel (P) or anti-parallel (AP) — sets the device resistance:
//! `R_AP = R_P · (1 + TMR)`. Writes are stochastic: a current pulse
//! switches the free layer with a probability given by the
//! thermal-activation model in [`crate::switching`].

use crate::switching::SwitchingModel;
use rand::{Rng, RngExt};

/// Magnetisation state of an MTJ's free layer relative to its reference
/// layer.
///
/// The state determines the device resistance: parallel is the
/// low-resistance state, anti-parallel the high-resistance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtjState {
    /// Low-resistance state (`R_P`). Also the "RESET" state for the
    /// SpinRng bitstream generator.
    #[default]
    Parallel,
    /// High-resistance state (`R_AP = R_P · (1 + TMR)`).
    AntiParallel,
}

impl MtjState {
    /// Returns the opposite state.
    ///
    /// # Examples
    ///
    /// ```
    /// use neuspin_device::MtjState;
    /// assert_eq!(MtjState::Parallel.flipped(), MtjState::AntiParallel);
    /// ```
    pub fn flipped(self) -> Self {
        match self {
            Self::Parallel => Self::AntiParallel,
            Self::AntiParallel => Self::Parallel,
        }
    }

    /// Interprets the state as a stored bit (AP = 1, P = 0), the
    /// convention used by the NeuSpin bit-cells.
    pub fn as_bit(self) -> bool {
        matches!(self, Self::AntiParallel)
    }
}

/// Nominal (design-time) parameters of an MTJ device.
///
/// Defaults correspond to a perpendicular STT/SOT MTJ in the range
/// reported by the MRAM literature the paper builds on (e.g. Lee et al.,
/// IEDM 2022): kΩ-range parallel resistance, TMR well above 100 %,
/// thermal stability Δ ≈ 60, nanosecond pulses and tens of µA critical
/// current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjParams {
    /// Parallel-state resistance in ohms.
    pub resistance_parallel: f64,
    /// Tunnelling magneto-resistance ratio: `R_AP = R_P (1 + tmr)`.
    pub tmr: f64,
    /// Thermal-stability factor Δ = E_b / (k_B·T) at operating
    /// temperature (dimensionless).
    pub thermal_stability: f64,
    /// Critical switching current `I_c0` in amperes (zero-temperature
    /// intrinsic critical current).
    pub critical_current: f64,
    /// Attempt time τ₀ in seconds (inverse attempt frequency, ≈ 1 ns).
    pub attempt_time: f64,
    /// Default write-pulse duration in seconds.
    pub pulse_width: f64,
    /// Relative standard deviation of read-current noise (thermal +
    /// sense noise, applied multiplicatively on read conductance).
    pub read_noise: f64,
}

impl Default for MtjParams {
    fn default() -> Self {
        Self {
            resistance_parallel: 5_000.0,
            tmr: 1.5,
            thermal_stability: 60.0,
            critical_current: 40e-6,
            attempt_time: 1e-9,
            pulse_width: 10e-9,
            read_noise: 0.01,
        }
    }
}

impl MtjParams {
    /// Anti-parallel resistance `R_P · (1 + TMR)` in ohms.
    pub fn resistance_antiparallel(&self) -> f64 {
        self.resistance_parallel * (1.0 + self.tmr)
    }

    /// Validates physical plausibility, returning a description of the
    /// first violated constraint.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any parameter is non-positive, non-finite, or the
    /// TMR / read-noise are out of their physical ranges.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, f64); 6] = [
            ("resistance_parallel", self.resistance_parallel),
            ("tmr", self.tmr),
            ("thermal_stability", self.thermal_stability),
            ("critical_current", self.critical_current),
            ("attempt_time", self.attempt_time),
            ("pulse_width", self.pulse_width),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        if !self.read_noise.is_finite() || self.read_noise < 0.0 {
            return Err(format!("read_noise must be finite and >= 0, got {}", self.read_noise));
        }
        Ok(())
    }
}

/// A single MTJ device instance.
///
/// A device holds its own (possibly variation-perturbed) parameters and
/// its current magnetisation state. Stochastic behaviour — switching and
/// read noise — is driven by a caller-supplied RNG so that experiments
/// are reproducible.
///
/// # Examples
///
/// ```
/// use neuspin_device::{Mtj, MtjParams, MtjState};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let mut mtj = Mtj::nominal(MtjParams::default());
///
/// // Deterministic-regime write: strong over-drive.
/// mtj.set(&mut rng);
/// assert_eq!(mtj.state(), MtjState::AntiParallel);
/// mtj.reset();
/// assert_eq!(mtj.state(), MtjState::Parallel);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mtj {
    params: MtjParams,
    state: MtjState,
    switching: SwitchingModel,
}

impl Mtj {
    /// Creates a device with exactly the nominal parameters (no
    /// device-to-device variation), initialised to the parallel state.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`MtjParams::validate`].
    pub fn nominal(params: MtjParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid MTJ parameters: {e}");
        }
        let switching = SwitchingModel::from_params(&params);
        Self { params, state: MtjState::Parallel, switching }
    }

    /// Returns the device parameters.
    pub fn params(&self) -> &MtjParams {
        &self.params
    }

    /// Returns the current magnetisation state.
    pub fn state(&self) -> MtjState {
        self.state
    }

    /// Forces the state (used by defect injection and test setup); does
    /// not consume energy or randomness.
    pub fn set_state(&mut self, state: MtjState) {
        self.state = state;
    }

    /// Returns the switching model for this device instance.
    pub fn switching(&self) -> &SwitchingModel {
        &self.switching
    }

    /// Ideal (noise-free) resistance of the current state, in ohms.
    pub fn resistance(&self) -> f64 {
        match self.state {
            MtjState::Parallel => self.params.resistance_parallel,
            MtjState::AntiParallel => self.params.resistance_antiparallel(),
        }
    }

    /// Ideal conductance of the current state, in siemens.
    pub fn conductance(&self) -> f64 {
        1.0 / self.resistance()
    }

    /// Reads the conductance through the sense path, applying
    /// multiplicative read noise.
    pub fn read_conductance<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let noise = 1.0 + self.params.read_noise * crate::stats::standard_normal(rng);
        self.conductance() * noise.max(0.0)
    }

    /// Reads the stored bit by comparing the (noisy) resistance against
    /// the mid-point reference, as a sense amplifier would.
    pub fn read_bit<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let g = self.read_conductance(rng);
        let g_mid = 0.5 * (1.0 / self.params.resistance_parallel
            + 1.0 / self.params.resistance_antiparallel());
        // AP (bit 1) is the *low*-conductance state.
        g < g_mid
    }

    /// Applies a write pulse of amplitude `current` (A) and duration
    /// `duration` (s) in the P→AP direction if the state is P, or AP→P if
    /// the current is negative. Switching succeeds with the probability
    /// given by the thermal-activation model; returns `true` if the state
    /// flipped.
    ///
    /// A zero or wrongly-signed current never switches the device.
    pub fn apply_pulse<R: Rng + ?Sized>(&mut self, current: f64, duration: f64, rng: &mut R) -> bool {
        let (magnitude, target) = if current > 0.0 {
            (current, MtjState::AntiParallel)
        } else if current < 0.0 {
            (-current, MtjState::Parallel)
        } else {
            return false;
        };
        if self.state == target {
            return false;
        }
        let p = self.switching.probability(magnitude, duration);
        if rng.random::<f64>() < p {
            self.state = target;
            true
        } else {
            false
        }
    }

    /// Attempts a SET (P→AP) with the given current at the default pulse
    /// width; returns `true` if the device switched. This is the
    /// stochastic write used by the SpinRng bitstream generator.
    pub fn try_set<R: Rng + ?Sized>(&mut self, current: f64, rng: &mut R) -> bool {
        self.apply_pulse(current.abs(), self.params.pulse_width, rng)
    }

    /// Deterministic-regime SET: a strong over-drive pulse (3·I_c, 10
    /// pulse widths) that switches with probability ≈ 1.
    pub fn set<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let i = 3.0 * self.params.critical_current;
        let t = 10.0 * self.params.pulse_width;
        self.apply_pulse(i, t, rng);
        // The residual non-switching probability at 3·I_c over 100 ns is
        // below 1e-12; treat the write as verified (write-verify loop).
        self.state = MtjState::AntiParallel;
    }

    /// Deterministic RESET back to the parallel state (write-verified).
    pub fn reset(&mut self) {
        self.state = MtjState::Parallel;
    }

    /// Writes the given bit deterministically (write-verify), AP = 1.
    pub fn write_bit(&mut self, bit: bool) {
        self.state = if bit { MtjState::AntiParallel } else { MtjState::Parallel };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn resistance_follows_state() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        assert_eq!(mtj.resistance(), 5_000.0);
        mtj.set_state(MtjState::AntiParallel);
        assert_eq!(mtj.resistance(), 12_500.0); // 5k * (1 + 1.5)
    }

    #[test]
    fn conductance_is_reciprocal() {
        let mtj = Mtj::nominal(MtjParams::default());
        assert!((mtj.conductance() * mtj.resistance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strong_pulse_switches() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        let flipped = mtj.apply_pulse(3.0 * 40e-6, 100e-9, &mut rng);
        assert!(flipped);
        assert_eq!(mtj.state(), MtjState::AntiParallel);
    }

    #[test]
    fn zero_current_never_switches() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        assert!(!mtj.apply_pulse(0.0, 1e-6, &mut rng));
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn negative_current_switches_back() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        mtj.set(&mut rng);
        let flipped = mtj.apply_pulse(-3.0 * 40e-6, 100e-9, &mut rng);
        assert!(flipped);
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn pulse_toward_current_state_is_noop() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        // Already parallel; AP→P pulse does nothing.
        assert!(!mtj.apply_pulse(-1.0, 1e-6, &mut rng));
    }

    #[test]
    fn read_bit_is_reliable_at_low_noise() {
        let mut mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        mtj.write_bit(true);
        let errors = (0..1_000).filter(|_| !mtj.read_bit(&mut rng)).count();
        assert_eq!(errors, 0, "1 % read noise must not flip a 150 % TMR read");
        mtj.write_bit(false);
        let errors = (0..1_000).filter(|_| mtj.read_bit(&mut rng)).count();
        assert_eq!(errors, 0);
    }

    #[test]
    fn read_noise_perturbs_conductance() {
        let mtj = Mtj::nominal(MtjParams::default());
        let mut rng = rng();
        let a = mtj.read_conductance(&mut rng);
        let b = mtj.read_conductance(&mut rng);
        assert_ne!(a, b);
        assert!((a / mtj.conductance() - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid MTJ parameters")]
    fn invalid_params_panic() {
        let params = MtjParams { tmr: -0.5, ..MtjParams::default() };
        let _ = Mtj::nominal(params);
    }

    #[test]
    fn state_flip_roundtrip() {
        assert_eq!(MtjState::Parallel.flipped().flipped(), MtjState::Parallel);
        assert!(MtjState::AntiParallel.as_bit());
        assert!(!MtjState::Parallel.as_bit());
    }

    #[test]
    fn params_validate_catches_each_field() {
        for field in 0..6 {
            let mut p = MtjParams::default();
            match field {
                0 => p.resistance_parallel = 0.0,
                1 => p.tmr = f64::NAN,
                2 => p.thermal_stability = -1.0,
                3 => p.critical_current = 0.0,
                4 => p.attempt_time = f64::INFINITY,
                _ => p.pulse_width = -1e-9,
            }
            assert!(p.validate().is_err(), "field {field} should fail");
        }
        assert!(MtjParams::default().validate().is_ok());
    }
}
