//! Manufacturing-defect models for MTJ arrays.
//!
//! Beyond parametric variation, fabricated arrays contain hard defects:
//! junctions pinned in one state (stuck-at), barrier pinholes (short),
//! and broken contacts (open). The NeuSpin reliability experiments
//! inject these into programmed crossbars and measure how well each
//! Bayesian method "self-heals".

use rand::{Rng, RngExt};
use std::collections::BTreeMap;
use std::fmt;

/// The kinds of hard defects a cell can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Free layer pinned parallel — cell always reads low resistance.
    StuckParallel,
    /// Free layer pinned anti-parallel — cell always reads high
    /// resistance.
    StuckAntiParallel,
    /// Tunnel-barrier pinhole: near-zero resistance (very high
    /// conductance), dominates column currents.
    Short,
    /// Broken access path: infinite resistance (zero conductance).
    Open,
}

impl DefectKind {
    /// All defect kinds, in a stable order.
    pub const ALL: [DefectKind; 4] = [
        DefectKind::StuckParallel,
        DefectKind::StuckAntiParallel,
        DefectKind::Short,
        DefectKind::Open,
    ];

    /// Position of this kind in [`DefectKind::ALL`] — the index used by
    /// per-kind count arrays ([`DefectConfusion`], BIST tallies).
    pub fn index(self) -> usize {
        match self {
            DefectKind::StuckParallel => 0,
            DefectKind::StuckAntiParallel => 1,
            DefectKind::Short => 2,
            DefectKind::Open => 3,
        }
    }
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefectKind::StuckParallel => "stuck-at-P",
            DefectKind::StuckAntiParallel => "stuck-at-AP",
            DefectKind::Short => "short",
            DefectKind::Open => "open",
        };
        f.write_str(s)
    }
}

/// Per-kind defect incidence rates (probability that a given cell has
/// that defect).
///
/// # Examples
///
/// ```
/// use neuspin_device::{DefectRates, DefectMap};
/// use rand::SeedableRng;
///
/// let rates = DefectRates::uniform(0.001);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let map = DefectMap::sample(64, 64, &rates, &mut rng);
/// assert!(map.defect_count() < 64 * 64 / 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DefectRates {
    /// P(stuck-at-P) per cell.
    pub stuck_parallel: f64,
    /// P(stuck-at-AP) per cell.
    pub stuck_antiparallel: f64,
    /// P(short) per cell.
    pub short: f64,
    /// P(open) per cell.
    pub open: f64,
}

impl DefectRates {
    /// No defects at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same rate for every defect kind.
    ///
    /// # Panics
    ///
    /// Panics if `4 * rate > 1` (rates must form a sub-probability).
    pub fn uniform(rate: f64) -> Self {
        let rates =
            Self { stuck_parallel: rate, stuck_antiparallel: rate, short: rate, open: rate };
        rates.validate();
        rates
    }

    /// Validates that the rates form a per-cell sub-probability: every
    /// rate finite and `>= 0`, and the total `<= 1`.
    ///
    /// Every sampling entry point ([`DefectMap::sample`]) calls this, so
    /// a hand-built `DefectRates` with public fields cannot silently
    /// skew the categorical draw in [`DefectRates::sample_cell`].
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite, or the rates sum to
    /// more than 1.
    pub fn validate(&self) {
        for kind in DefectKind::ALL {
            let r = self.rate(kind);
            assert!(r.is_finite() && r >= 0.0, "{kind} rate must be finite and >= 0, got {r}");
        }
        let total = self.total();
        assert!(total <= 1.0, "total defect rate must be <= 1, got {total}");
    }

    /// Total per-cell defect probability.
    pub fn total(&self) -> f64 {
        self.stuck_parallel + self.stuck_antiparallel + self.short + self.open
    }

    /// Rate of the given kind.
    pub fn rate(&self, kind: DefectKind) -> f64 {
        match kind {
            DefectKind::StuckParallel => self.stuck_parallel,
            DefectKind::StuckAntiParallel => self.stuck_antiparallel,
            DefectKind::Short => self.short,
            DefectKind::Open => self.open,
        }
    }

    /// Draws the defect (if any) of a single cell.
    pub fn sample_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<DefectKind> {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for kind in DefectKind::ALL {
            acc += self.rate(kind);
            if u < acc {
                return Some(kind);
            }
        }
        None
    }
}

/// A sparse map of defective cells in an `rows × cols` array.
///
/// Stored sparsely (defect rates are small) and iterated in a stable
/// row-major order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefectMap {
    rows: usize,
    cols: usize,
    cells: BTreeMap<(usize, usize), DefectKind>,
}

impl DefectMap {
    /// An empty (defect-free) map for an array of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self { rows, cols, cells: BTreeMap::new() }
    }

    /// Samples a defect map for an `rows × cols` array from the given
    /// rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` fails [`DefectRates::validate`].
    pub fn sample<R: Rng + ?Sized>(rows: usize, cols: usize, rates: &DefectRates, rng: &mut R) -> Self {
        rates.validate();
        let mut cells = BTreeMap::new();
        for r in 0..rows {
            for c in 0..cols {
                if let Some(kind) = rates.sample_cell(rng) {
                    cells.insert((r, c), kind);
                }
            }
        }
        Self { rows, cols, cells }
    }

    /// Array shape `(rows, cols)` this map was built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Defect at `(row, col)`, if any.
    pub fn defect_at(&self, row: usize, col: usize) -> Option<DefectKind> {
        self.cells.get(&(row, col)).copied()
    }

    /// Manually marks a cell defective (overwrites any existing defect).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn inject(&mut self, row: usize, col: usize, kind: DefectKind) {
        assert!(row < self.rows && col < self.cols,
                "({row}, {col}) outside {}x{} map", self.rows, self.cols);
        self.cells.insert((row, col), kind);
    }

    /// Number of defective cells.
    pub fn defect_count(&self) -> usize {
        self.cells.len()
    }

    /// Fraction of defective cells.
    pub fn defect_density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.cells.len() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Iterates `((row, col), kind)` in row-major order.
    pub fn iter(&self) -> DefectMapIter<'_> {
        DefectMapIter { inner: self.cells.iter() }
    }

    /// Count of defects of one kind.
    pub fn count_of(&self, kind: DefectKind) -> usize {
        self.cells.values().filter(|&&k| k == kind).count()
    }

    /// Removes a defect marker (e.g. after the cell was rewired to a
    /// spare). Returns the removed kind, if the cell was defective.
    pub fn clear(&mut self, row: usize, col: usize) -> Option<DefectKind> {
        self.cells.remove(&(row, col))
    }

    /// Removes every defect marker in one column (the unit of spare
    /// redundancy repair). Returns the number cleared.
    pub fn clear_column(&mut self, col: usize) -> usize {
        let before = self.cells.len();
        self.cells.retain(|&(_, c), _| c != col);
        before - self.cells.len()
    }

    /// Number of defective cells in one column.
    pub fn column_defect_count(&self, col: usize) -> usize {
        self.cells.keys().filter(|&&(_, c)| c == col).count()
    }

    /// Idealized stand-in for the production repair flow: *assumes*
    /// barrier shorts are screened at test and mapped to spare columns,
    /// and simply erases them from the in-field defect population.
    /// Returns the number erased.
    ///
    /// The modeled flow — march-test detection, a finite spare-column
    /// budget that can run out, and imperfect spares — lives in
    /// `neuspin_cim::bist` / `neuspin_cim::repair`; prefer it whenever
    /// the repair process itself is part of the scenario under study.
    pub fn repair_shorts(&mut self) -> usize {
        let before = self.cells.len();
        self.cells.retain(|_, kind| *kind != DefectKind::Short);
        before - self.cells.len()
    }

    /// Compares this map (an *estimate*, e.g. a BIST result) against the
    /// true defect population, tallying per-kind detection quality.
    ///
    /// Cells present in both maps count as `detected` under the true
    /// kind when the kinds agree, and as `misclassified` (under the true
    /// kind) when they disagree. Cells only in `truth` are `missed`;
    /// cells only in the estimate are `false_positives` (under the
    /// claimed kind).
    ///
    /// # Panics
    ///
    /// Panics if the two maps were built for different array shapes.
    pub fn confusion(&self, truth: &DefectMap) -> DefectConfusion {
        assert_eq!(self.shape(), truth.shape(),
                   "confusion requires maps of the same shape");
        let mut out = DefectConfusion::default();
        for (pos, claimed) in self {
            match truth.defect_at(pos.0, pos.1) {
                Some(actual) if actual == claimed => out.detected[actual.index()] += 1,
                Some(actual) => out.misclassified[actual.index()] += 1,
                None => out.false_positives[claimed.index()] += 1,
            }
        }
        for (pos, actual) in truth {
            if self.defect_at(pos.0, pos.1).is_none() {
                out.missed[actual.index()] += 1;
            }
        }
        out
    }
}

/// Per-kind detection quality of an estimated [`DefectMap`] against the
/// true one, indexed by [`DefectKind::index`] (the [`DefectKind::ALL`]
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DefectConfusion {
    /// True positives with the kind identified correctly.
    pub detected: [usize; 4],
    /// True defects the estimate flagged under the wrong kind
    /// (tallied by the *true* kind).
    pub misclassified: [usize; 4],
    /// True defects the estimate missed entirely (false negatives).
    pub missed: [usize; 4],
    /// Healthy cells the estimate flagged (tallied by the claimed kind).
    pub false_positives: [usize; 4],
}

impl DefectConfusion {
    /// Total correctly detected-and-classified defects.
    pub fn total_detected(&self) -> usize {
        self.detected.iter().sum()
    }

    /// Total true defects missed entirely.
    pub fn total_missed(&self) -> usize {
        self.missed.iter().sum()
    }

    /// Total healthy cells falsely flagged.
    pub fn total_false_positives(&self) -> usize {
        self.false_positives.iter().sum()
    }

    /// Total true defects misclassified as another kind.
    pub fn total_misclassified(&self) -> usize {
        self.misclassified.iter().sum()
    }

    /// Fraction of true defects flagged at all (regardless of the
    /// claimed kind). `1.0` when there are no true defects.
    pub fn detection_rate(&self) -> f64 {
        let truth = self.total_detected() + self.total_misclassified() + self.total_missed();
        if truth == 0 {
            1.0
        } else {
            (self.total_detected() + self.total_misclassified()) as f64 / truth as f64
        }
    }
}

/// Row-major iterator over the defective cells of a [`DefectMap`].
///
/// A concrete wrapper around the underlying B-tree iterator, so
/// `for … in &map` neither boxes nor allocates.
#[derive(Debug, Clone)]
pub struct DefectMapIter<'a> {
    inner: std::collections::btree_map::Iter<'a, (usize, usize), DefectKind>,
}

impl<'a> Iterator for DefectMapIter<'a> {
    type Item = ((usize, usize), DefectKind);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(&pos, &kind)| (pos, kind))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for DefectMapIter<'_> {}

impl<'a> IntoIterator for &'a DefectMap {
    type Item = ((usize, usize), DefectKind);
    type IntoIter = DefectMapIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Conductance override (in siemens) implied by a defect, given the
/// healthy P/AP conductances.
///
/// * stuck-at defects pin the cell to the corresponding healthy level;
/// * a short conducts ~50× the parallel conductance;
/// * an open conducts nothing.
pub fn defect_conductance(kind: DefectKind, g_parallel: f64, g_antiparallel: f64) -> f64 {
    match kind {
        DefectKind::StuckParallel => g_parallel,
        DefectKind::StuckAntiParallel => g_antiparallel,
        DefectKind::Short => 50.0 * g_parallel,
        DefectKind::Open => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_map_has_no_defects() {
        let m = DefectMap::empty(8, 8);
        assert_eq!(m.defect_count(), 0);
        assert_eq!(m.defect_density(), 0.0);
        assert_eq!(m.defect_at(3, 3), None);
    }

    #[test]
    fn sampled_density_tracks_rates() {
        let mut rng = StdRng::seed_from_u64(10);
        let rates = DefectRates::uniform(0.01); // 4 % total
        let m = DefectMap::sample(200, 200, &rates, &mut rng);
        let d = m.defect_density();
        assert!((d - 0.04).abs() < 0.005, "density {d}");
    }

    #[test]
    fn zero_rates_sample_empty() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = DefectMap::sample(50, 50, &DefectRates::none(), &mut rng);
        assert_eq!(m.defect_count(), 0);
    }

    #[test]
    fn inject_and_query() {
        let mut m = DefectMap::empty(4, 4);
        m.inject(1, 2, DefectKind::Open);
        assert_eq!(m.defect_at(1, 2), Some(DefectKind::Open));
        assert_eq!(m.count_of(DefectKind::Open), 1);
        m.inject(1, 2, DefectKind::Short); // overwrite
        assert_eq!(m.defect_at(1, 2), Some(DefectKind::Short));
        assert_eq!(m.defect_count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn inject_out_of_range_panics() {
        DefectMap::empty(2, 2).inject(2, 0, DefectKind::Open);
    }

    #[test]
    fn all_kinds_appear_at_high_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = DefectMap::sample(100, 100, &DefectRates::uniform(0.05), &mut rng);
        for kind in DefectKind::ALL {
            assert!(m.count_of(kind) > 0, "{kind} never sampled");
        }
    }

    #[test]
    fn defect_conductances_are_ordered() {
        let gp = 1.0 / 5_000.0;
        let gap = 1.0 / 12_500.0;
        assert_eq!(defect_conductance(DefectKind::Open, gp, gap), 0.0);
        assert_eq!(defect_conductance(DefectKind::StuckParallel, gp, gap), gp);
        assert_eq!(defect_conductance(DefectKind::StuckAntiParallel, gp, gap), gap);
        assert!(defect_conductance(DefectKind::Short, gp, gap) > 10.0 * gp);
    }

    #[test]
    fn display_names() {
        assert_eq!(DefectKind::StuckParallel.to_string(), "stuck-at-P");
        assert_eq!(DefectKind::Open.to_string(), "open");
    }

    #[test]
    fn repair_removes_only_shorts() {
        let mut m = DefectMap::empty(4, 4);
        m.inject(0, 0, DefectKind::Short);
        m.inject(1, 1, DefectKind::Open);
        m.inject(2, 2, DefectKind::Short);
        assert_eq!(m.repair_shorts(), 2);
        assert_eq!(m.defect_count(), 1);
        assert_eq!(m.defect_at(1, 1), Some(DefectKind::Open));
    }

    #[test]
    fn iteration_is_row_major() {
        let mut m = DefectMap::empty(3, 3);
        m.inject(2, 0, DefectKind::Open);
        m.inject(0, 1, DefectKind::Short);
        let order: Vec<_> = m.iter().map(|(pos, _)| pos).collect();
        assert_eq!(order, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn ref_into_iter_is_concrete_and_sized() {
        let mut m = DefectMap::empty(3, 3);
        m.inject(1, 1, DefectKind::Short);
        m.inject(2, 2, DefectKind::Open);
        let it: DefectMapIter<'_> = (&m).into_iter();
        assert_eq!(it.len(), 2);
        let collected: Vec<_> = (&m).into_iter().collect();
        assert_eq!(collected, vec![((1, 1), DefectKind::Short), ((2, 2), DefectKind::Open)]);
    }

    #[test]
    fn validate_accepts_sub_probability() {
        DefectRates { stuck_parallel: 0.3, stuck_antiparallel: 0.3, short: 0.2, open: 0.2 }
            .validate();
        DefectRates::none().validate();
    }

    #[test]
    #[should_panic(expected = "rate must be finite and >= 0")]
    fn validate_rejects_negative_rate() {
        DefectRates { open: -0.1, ..DefectRates::none() }.validate();
    }

    #[test]
    #[should_panic(expected = "total defect rate must be <= 1")]
    fn validate_rejects_super_probability() {
        DefectRates { short: 0.6, open: 0.6, ..DefectRates::none() }.validate();
    }

    #[test]
    #[should_panic(expected = "total defect rate must be <= 1")]
    fn sample_rejects_invalid_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = DefectRates { stuck_parallel: 0.9, short: 0.9, ..DefectRates::none() };
        let _ = DefectMap::sample(4, 4, &bad, &mut rng);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and >= 0")]
    fn sample_rejects_nan_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = DefectRates { short: f64::NAN, ..DefectRates::none() };
        let _ = DefectMap::sample(4, 4, &bad, &mut rng);
    }

    #[test]
    fn confusion_classifies_every_disagreement() {
        let mut truth = DefectMap::empty(4, 4);
        truth.inject(0, 0, DefectKind::Short);         // detected exactly
        truth.inject(1, 1, DefectKind::Open);          // misclassified
        truth.inject(2, 2, DefectKind::StuckParallel); // missed
        let mut est = DefectMap::empty(4, 4);
        est.inject(0, 0, DefectKind::Short);
        est.inject(1, 1, DefectKind::StuckAntiParallel);
        est.inject(3, 3, DefectKind::Open);            // false positive
        let c = est.confusion(&truth);
        assert_eq!(c.detected[DefectKind::Short.index()], 1);
        assert_eq!(c.total_detected(), 1);
        assert_eq!(c.misclassified[DefectKind::Open.index()], 1);
        assert_eq!(c.total_misclassified(), 1);
        assert_eq!(c.missed[DefectKind::StuckParallel.index()], 1);
        assert_eq!(c.total_missed(), 1);
        assert_eq!(c.false_positives[DefectKind::Open.index()], 1);
        assert_eq!(c.total_false_positives(), 1);
        assert!((c.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_on_clean_maps_is_perfect() {
        let a = DefectMap::empty(2, 2);
        let c = a.confusion(&DefectMap::empty(2, 2));
        assert_eq!(c, DefectConfusion::default());
        assert_eq!(c.detection_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn confusion_rejects_shape_mismatch() {
        let _ = DefectMap::empty(2, 2).confusion(&DefectMap::empty(2, 3));
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, kind) in DefectKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn clear_and_column_helpers() {
        let mut m = DefectMap::empty(4, 4);
        m.inject(0, 2, DefectKind::Short);
        m.inject(3, 2, DefectKind::Open);
        m.inject(1, 0, DefectKind::StuckParallel);
        assert_eq!(m.column_defect_count(2), 2);
        assert_eq!(m.clear(0, 2), Some(DefectKind::Short));
        assert_eq!(m.clear(0, 2), None);
        assert_eq!(m.clear_column(2), 1);
        assert_eq!(m.column_defect_count(2), 0);
        assert_eq!(m.defect_count(), 1, "other columns untouched");
    }
}
