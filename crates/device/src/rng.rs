//! The spintronic true random number generator (SpinRng).
//!
//! NeuSpin's dropout modules all reduce to the same primitive: an MTJ
//! biased at a sub-critical write current so that a fixed-width SET
//! pulse switches it with a chosen probability `p`. One bit is produced
//! per SET → read → RESET cycle:
//!
//! 1. apply the calibrated SET pulse (stochastic switch),
//! 2. read the state through the sense amplifier (did it switch?),
//! 3. RESET back to parallel for the next cycle.
//!
//! Because every device deviates from nominal, the paper treats the
//! realised probability as itself a random variable — the calibration
//! loop here supports both *nominal* calibration (design-time current,
//! subject to device variation) and *measured* closed-loop calibration
//! (tune against the device's observed switch rate).

use crate::mtj::{Mtj, MtjParams};
use crate::variation::VariedParams;
use rand::{Rng, RngExt};

/// Outcome of calibrating a [`SpinRng`] against a target probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationReport {
    /// Probability the module was asked to produce.
    pub target_p: f64,
    /// Write current (A) selected by the loop.
    pub bias_current: f64,
    /// The device's true switching probability at that bias (exact, from
    /// its instance switching model).
    pub realized_p: f64,
    /// Number of measurement bits spent (0 for nominal calibration).
    pub measurement_bits: u64,
}

impl CalibrationReport {
    /// Absolute probability error `|realized − target|`.
    pub fn abs_error(&self) -> f64 {
        (self.realized_p - self.target_p).abs()
    }
}

/// The mutable calibration/usage state of a [`SpinRng`], as plain data
/// for checkpointing. The device instance itself (its varied parameters)
/// is fabrication-time state, reconstructed by rebuilding from the same
/// deterministic constructor; restoring this onto that twin reproduces
/// the cached switching probability exactly (it is recomputed from the
/// same device at the same bias).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpinRngState {
    /// Bias current (A) applied for SET pulses.
    pub bias_current: f64,
    /// The probability the module was calibrated for.
    pub target_p: f64,
    /// Total bits produced since construction.
    pub bits_generated: u64,
}

/// A Bernoulli bitstream generator built from one stochastic MTJ.
///
/// # Examples
///
/// ```
/// use neuspin_device::{SpinRng, VariedParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(21);
/// let mut spin = SpinRng::new(VariedParams::ideal(), &mut rng);
/// let report = spin.calibrate_nominal(0.5);
/// assert!(report.abs_error() < 1e-9); // ideal device: exact
///
/// let ones = (0..1000).filter(|_| spin.next_bit(&mut rng)).count();
/// assert!((ones as f64 / 1000.0 - 0.5).abs() < 0.06);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpinRng {
    device: Mtj,
    nominal: MtjParams,
    bias_current: f64,
    target_p: f64,
    bits_generated: u64,
    /// The device's switching probability at the current bias point,
    /// cached on every bias change: the per-bit hot path is one uniform
    /// draw against this value, without re-evaluating the switching
    /// model (two `exp` calls) per bit.
    p_at_bias: f64,
}

impl SpinRng {
    /// Instantiates the module's MTJ from a process corner and leaves it
    /// uncalibrated (bias current 0 → always-zero bits).
    pub fn new<R: Rng + ?Sized>(corner: VariedParams, rng: &mut R) -> Self {
        let device = corner.instantiate(rng);
        Self {
            device,
            nominal: corner.nominal,
            bias_current: 0.0,
            target_p: 0.0,
            bits_generated: 0,
            p_at_bias: 0.0,
        }
    }

    /// Applies a new bias current and refreshes the cached switching
    /// probability. All bias mutations must go through here.
    fn set_bias(&mut self, current: f64) {
        self.bias_current = current;
        // `Mtj::try_set` pulses with the magnitude of the current, so
        // the cache must too.
        self.p_at_bias = self
            .device
            .switching()
            .probability(current.abs(), self.device.params().pulse_width);
    }

    /// The probability the module is currently calibrated for.
    pub fn target_p(&self) -> f64 {
        self.target_p
    }

    /// The bias current (A) currently applied for SET pulses.
    pub fn bias_current(&self) -> f64 {
        self.bias_current
    }

    /// Total bits produced since construction (RNG wear metric — each
    /// bit costs one write + one read + one reset).
    pub fn bits_generated(&self) -> u64 {
        self.bits_generated
    }

    /// The true per-bit probability at the current bias, from the
    /// device-instance switching model. (An oracle quantity: real
    /// hardware can only estimate it by counting.)
    pub fn realized_p(&self) -> f64 {
        self.device
            .switching()
            .probability(self.bias_current, self.device.params().pulse_width)
    }

    /// Design-time calibration: pick the bias current that the *nominal*
    /// device would need for probability `p`. Device-to-device variation
    /// then makes the realised probability deviate — exactly the
    /// non-ideality the NeuSpin training methods must absorb.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn calibrate_nominal(&mut self, p: f64) -> CalibrationReport {
        let nominal_model = crate::SwitchingModel::from_params(&self.nominal);
        self.set_bias(nominal_model.current_for_probability(p, self.nominal.pulse_width));
        self.target_p = p;
        CalibrationReport {
            target_p: p,
            bias_current: self.bias_current,
            realized_p: self.realized_p(),
            measurement_bits: 0,
        }
    }

    /// Closed-loop calibration: bisect on the bias current, *measuring*
    /// the switch rate with `bits_per_step` trial bits per step, until
    /// the measured rate is within `tolerance` of `p` or `max_steps` is
    /// exhausted. This consumes real device cycles (counted in the
    /// report) but cancels device-to-device variation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`, or `bits_per_step == 0`.
    pub fn calibrate_measured<R: Rng + ?Sized>(
        &mut self,
        p: f64,
        bits_per_step: u32,
        tolerance: f64,
        max_steps: u32,
        rng: &mut R,
    ) -> CalibrationReport {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
        assert!(bits_per_step > 0, "bits_per_step must be positive");
        // Bracket around the device's own inverse as a warm start.
        let model = *self.device.switching();
        let width = self.device.params().pulse_width;
        let center = model.current_for_probability(p, width);
        let mut lo = 0.5 * center;
        let mut hi = 1.5 * center.max(1e-9);
        let mut spent: u64 = 0;
        let mut best = center;
        for _ in 0..max_steps {
            let mid = 0.5 * (lo + hi);
            self.set_bias(mid);
            let mut ones = 0u32;
            for _ in 0..bits_per_step {
                if self.raw_bit(rng) {
                    ones += 1;
                }
            }
            spent += u64::from(bits_per_step);
            let measured = f64::from(ones) / f64::from(bits_per_step);
            best = mid;
            if (measured - p).abs() <= tolerance {
                break;
            }
            if measured < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.set_bias(best);
        self.target_p = p;
        CalibrationReport {
            target_p: p,
            bias_current: best,
            realized_p: self.realized_p(),
            measurement_bits: spent,
        }
    }

    /// Exports the mutable calibration/usage state for checkpointing.
    pub fn state(&self) -> SpinRngState {
        SpinRngState {
            bias_current: self.bias_current,
            target_p: self.target_p,
            bits_generated: self.bits_generated,
        }
    }

    /// Restores the mutable state exported by [`SpinRng::state`]. The
    /// cached switching probability is recomputed through the normal
    /// bias path, so it is bit-identical to the value the source module
    /// carried (same device instance, same bias, same arithmetic).
    pub fn restore_state(&mut self, state: &SpinRngState) {
        self.set_bias(state.bias_current);
        self.target_p = state.target_p;
        self.bits_generated = state.bits_generated;
    }

    fn raw_bit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        // One SET attempt at the bias point (sensed with write-verify
        // semantics), then RESET for the next cycle. The device starts
        // every cycle in the parallel state, so the attempt reduces to
        // one uniform draw against the cached switching probability —
        // the same draw and the same comparison `Mtj::try_set` would
        // make, without re-evaluating the switching model per bit.
        self.bits_generated += 1;
        if self.bias_current == 0.0 {
            // Uncalibrated: a zero-amplitude pulse never switches and
            // draws nothing.
            return false;
        }
        rng.random::<f64>() < self.p_at_bias
    }

    /// Produces one random bit (one full SET → read → RESET cycle).
    pub fn next_bit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.raw_bit(rng)
    }

    /// Produces `n` bits into a vector.
    pub fn bits<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<bool> {
        (0..n).map(|_| self.next_bit(rng)).collect()
    }

    /// Empirically estimates the module's probability with `n` bits
    /// (consumes cycles).
    pub fn measure_p<R: Rng + ?Sized>(&mut self, n: u32, rng: &mut R) -> f64 {
        assert!(n > 0, "n must be positive");
        let ones = (0..n).filter(|_| self.next_bit(rng)).count();
        ones as f64 / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn uncalibrated_rng_emits_zeros() {
        let mut r = rng();
        let mut spin = SpinRng::new(VariedParams::ideal(), &mut r);
        assert!(spin.bits(100, &mut r).iter().all(|&b| !b));
    }

    #[test]
    fn nominal_calibration_on_ideal_device_is_exact() {
        let mut r = rng();
        let mut spin = SpinRng::new(VariedParams::ideal(), &mut r);
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            let rep = spin.calibrate_nominal(p);
            assert!(rep.abs_error() < 1e-9, "p {p}: error {}", rep.abs_error());
        }
    }

    #[test]
    fn bitstream_frequency_matches_target() {
        let mut r = rng();
        let mut spin = SpinRng::new(VariedParams::ideal(), &mut r);
        spin.calibrate_nominal(0.3);
        let freq = spin.measure_p(20_000, &mut r);
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn variation_perturbs_nominal_calibration() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.10));
        // Across devices the realised p spreads around the target.
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let mut spin = SpinRng::new(corner, &mut r);
            let rep = spin.calibrate_nominal(0.5);
            worst = worst.max(rep.abs_error());
        }
        assert!(worst > 0.02, "10 % variation should visibly shift p (worst {worst})");
    }

    #[test]
    fn measured_calibration_beats_nominal_under_variation() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.10));
        let mut nominal_err = 0.0;
        let mut measured_err = 0.0;
        for _ in 0..20 {
            let mut spin = SpinRng::new(corner, &mut r);
            nominal_err += spin.calibrate_nominal(0.5).abs_error();
            let rep = spin.calibrate_measured(0.5, 400, 0.01, 30, &mut r);
            measured_err += rep.abs_error();
            assert!(rep.measurement_bits > 0);
        }
        assert!(
            measured_err < nominal_err,
            "closed loop ({measured_err}) must beat open loop ({nominal_err})"
        );
    }

    #[test]
    fn bit_counter_accumulates() {
        let mut r = rng();
        let mut spin = SpinRng::new(VariedParams::ideal(), &mut r);
        spin.calibrate_nominal(0.5);
        spin.bits(64, &mut r);
        assert_eq!(spin.bits_generated(), 64);
    }

    #[test]
    fn state_round_trip_restores_bias_and_cache() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.05));
        let mut a = SpinRng::new(corner, &mut r);
        a.calibrate_nominal(0.37);
        a.bits(17, &mut r);
        let state = a.state();
        // The twin is the *same* device draw: rebuild with a replayed
        // constructor RNG.
        let mut r2 = rng();
        let mut b = SpinRng::new(corner, &mut r2);
        b.restore_state(&state);
        assert_eq!(a, b, "restored module must equal the source bit for bit");
        assert_eq!(b.bits_generated(), 17);
        assert_eq!(b.realized_p().to_bits(), a.realized_p().to_bits());
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn measured_calibration_rejects_bad_p() {
        let mut r = rng();
        let mut spin = SpinRng::new(VariedParams::ideal(), &mut r);
        spin.calibrate_measured(0.0, 10, 0.01, 5, &mut r);
    }
}
