//! Multi-level cells built from several MTJs.
//!
//! A single MTJ stores one bit (two conductance levels). SpinBayes and
//! the sub-set VI architecture need *quantized multi-bit* weights, which
//! the paper realises as several MTJs sharing a read path on the same
//! heavy-metal track (SOT allows stacking MTJs on one write line). With
//! `k` MTJs in parallel the cell exposes `k + 1` distinct conductance
//! levels: `level = number of devices in the parallel state`.

use crate::mtj::Mtj;
use crate::variation::VariedParams;
use rand::Rng;

/// A multi-value cell of `k` parallel MTJs (`k + 1` conductance levels).
///
/// # Examples
///
/// ```
/// use neuspin_device::{MultiLevelCell, VariedParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(31);
/// let mut cell = MultiLevelCell::new(3, VariedParams::ideal(), &mut rng);
/// assert_eq!(cell.level_count(), 4);
///
/// cell.program(2);
/// assert_eq!(cell.level(), 2);
/// let g2 = cell.conductance();
/// cell.program(3);
/// assert!(cell.conductance() > g2); // more parallel devices → higher G
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLevelCell {
    devices: Vec<Mtj>,
}

impl MultiLevelCell {
    /// Builds a cell of `k` device instances drawn from the process
    /// corner.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new<R: Rng + ?Sized>(k: usize, corner: VariedParams, rng: &mut R) -> Self {
        assert!(k > 0, "a multi-level cell needs at least one MTJ");
        let devices = (0..k).map(|_| corner.instantiate(rng)).collect();
        Self { devices }
    }

    /// Number of MTJs in the cell.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of programmable levels (`device_count() + 1`).
    pub fn level_count(&self) -> usize {
        self.devices.len() + 1
    }

    /// Currently programmed level (number of parallel-state devices).
    pub fn level(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.state() == crate::MtjState::Parallel)
            .count()
    }

    /// Programs the cell to `level` (write-verified): the first `level`
    /// devices are set parallel, the rest anti-parallel.
    ///
    /// # Panics
    ///
    /// Panics if `level >= level_count()` is violated
    /// (`level` must be `<= device_count()`).
    pub fn program(&mut self, level: usize) {
        assert!(
            level < self.level_count(),
            "level {level} out of range for {}-level cell",
            self.level_count()
        );
        for (i, d) in self.devices.iter_mut().enumerate() {
            d.write_bit(i >= level); // bit 1 = AP
        }
    }

    /// Ideal (noise-free) total conductance of the shared read path, in
    /// siemens: the sum of the parallel devices' conductances.
    pub fn conductance(&self) -> f64 {
        self.devices.iter().map(Mtj::conductance).sum()
    }

    /// Noisy read of the total conductance (each device contributes its
    /// own read noise).
    pub fn read_conductance<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.devices.iter().map(|d| d.read_conductance(rng)).sum()
    }

    /// The ideal conductance the *nominal* cell would have at each level
    /// — the reference ladder a readout ADC is designed against.
    pub fn nominal_ladder(corner: &VariedParams, k: usize) -> Vec<f64> {
        let g_p = 1.0 / corner.nominal.resistance_parallel;
        let g_ap = 1.0 / corner.nominal.resistance_antiparallel();
        (0..=k)
            .map(|level| level as f64 * g_p + (k - level) as f64 * g_ap)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationModel;
    use crate::MtjParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(41)
    }

    #[test]
    fn levels_are_monotone_in_conductance() {
        let mut r = rng();
        let mut cell = MultiLevelCell::new(7, VariedParams::ideal(), &mut r);
        let mut last = -1.0;
        for level in 0..cell.level_count() {
            cell.program(level);
            assert_eq!(cell.level(), level);
            let g = cell.conductance();
            assert!(g > last, "level {level} must raise conductance");
            last = g;
        }
    }

    #[test]
    fn nominal_ladder_matches_ideal_cell() {
        let mut r = rng();
        let corner = VariedParams::ideal();
        let mut cell = MultiLevelCell::new(3, corner, &mut r);
        let ladder = MultiLevelCell::nominal_ladder(&corner, 3);
        assert_eq!(ladder.len(), 4);
        for (level, &g_expected) in ladder.iter().enumerate() {
            cell.program(level);
            assert!((cell.conductance() - g_expected).abs() < 1e-15);
        }
    }

    #[test]
    fn variation_spreads_levels_but_keeps_order() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.05));
        let mut cell = MultiLevelCell::new(4, corner, &mut r);
        let mut last = -1.0;
        for level in 0..5 {
            cell.program(level);
            let g = cell.conductance();
            assert!(g > last, "5 % variation must not reorder a 150 % TMR ladder");
            last = g;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn program_rejects_out_of_range_level() {
        let mut r = rng();
        let mut cell = MultiLevelCell::new(2, VariedParams::ideal(), &mut r);
        cell.program(3);
    }

    #[test]
    #[should_panic(expected = "at least one MTJ")]
    fn zero_device_cell_rejected() {
        let mut r = rng();
        let _ = MultiLevelCell::new(0, VariedParams::ideal(), &mut r);
    }

    #[test]
    fn noisy_read_close_to_ideal() {
        let mut r = rng();
        let mut cell = MultiLevelCell::new(3, VariedParams::ideal(), &mut r);
        cell.program(2);
        let ideal = cell.conductance();
        let noisy = cell.read_conductance(&mut r);
        assert!((noisy / ideal - 1.0).abs() < 0.05);
    }
}
