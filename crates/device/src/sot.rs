//! Three-terminal SOT-MRAM device model.
//!
//! A spin-orbit-torque device places the MTJ on a heavy-metal strip; the
//! write current flows *under* the junction (through the strip) and the
//! read current flows *through* it. This segregation gives SOT devices
//! their key advantages exploited by NeuSpin:
//!
//! * the read path never stresses the barrier → effectively unlimited
//!   read endurance and tunable, MΩ-range read resistance;
//! * write and read can use independently optimised currents;
//! * several MTJs can share one strip ([`crate::MultiLevelCell`]).

use crate::mtj::{Mtj, MtjParams, MtjState};
use crate::variation::VariedParams;
use rand::Rng;

/// A three-terminal SOT device: an [`Mtj`] plus a heavy-metal write
/// track with its own resistance and a read-path series resistance that
/// can be tuned at design time.
///
/// # Examples
///
/// ```
/// use neuspin_device::{SotDevice, VariedParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(13);
/// let mut dev = SotDevice::new(VariedParams::ideal(), 1.0e6, &mut rng);
///
/// dev.write(true, &mut rng);
/// assert!(dev.stored_bit());
/// // Read path sees the series resistance: conductance well below 1/R_AP.
/// assert!(dev.read_conductance(&mut rng) < 1.0 / 1.0e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SotDevice {
    mtj: Mtj,
    /// Series resistance inserted in the read path (Ω) — the "tunable
    /// resistance" knob, adjustable to several MΩ.
    read_series_resistance: f64,
    /// Heavy-metal track resistance (Ω), sets the write energy.
    track_resistance: f64,
    writes: u64,
    reads: u64,
}

impl SotDevice {
    /// Builds a device from a process corner with the given read-path
    /// series resistance (Ω). Track resistance defaults to 200 Ω.
    ///
    /// # Panics
    ///
    /// Panics if `read_series_resistance` is negative or non-finite.
    pub fn new<R: Rng + ?Sized>(corner: VariedParams, read_series_resistance: f64, rng: &mut R) -> Self {
        assert!(
            read_series_resistance.is_finite() && read_series_resistance >= 0.0,
            "series resistance must be finite and >= 0"
        );
        Self {
            mtj: corner.instantiate(rng),
            read_series_resistance,
            track_resistance: 200.0,
            writes: 0,
            reads: 0,
        }
    }

    /// The underlying MTJ.
    pub fn mtj(&self) -> &Mtj {
        &self.mtj
    }

    /// Read-path series resistance (Ω).
    pub fn read_series_resistance(&self) -> f64 {
        self.read_series_resistance
    }

    /// Retunes the read-path series resistance (Ω) — the conductance
    /// programming knob used when SOT cells act as analog weights.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is negative or non-finite.
    pub fn set_read_series_resistance(&mut self, ohms: f64) {
        assert!(ohms.is_finite() && ohms >= 0.0, "series resistance must be finite and >= 0");
        self.read_series_resistance = ohms;
    }

    /// Heavy-metal track resistance (Ω).
    pub fn track_resistance(&self) -> f64 {
        self.track_resistance
    }

    /// Number of write pulses applied so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of reads performed so far.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Stored bit (AP = 1).
    pub fn stored_bit(&self) -> bool {
        self.mtj.state().as_bit()
    }

    /// Deterministic (write-verified) bit write through the SOT track.
    pub fn write<R: Rng + ?Sized>(&mut self, bit: bool, _rng: &mut R) {
        self.mtj.write_bit(bit);
        self.writes += 1;
    }

    /// Stochastic write attempt at `current` (A) through the track in
    /// the SET direction; returns whether the device switched. Used when
    /// the SOT device serves as a random source.
    pub fn try_set<R: Rng + ?Sized>(&mut self, current: f64, rng: &mut R) -> bool {
        self.writes += 1;
        self.mtj.try_set(current, rng)
    }

    /// Resets to the parallel state through the track (write-verified).
    pub fn reset(&mut self) {
        self.mtj.reset();
        self.writes += 1;
    }

    /// Noisy read-path conductance: the MTJ in series with the tuning
    /// resistor, `G = 1 / (R_state + R_series)`.
    pub fn read_conductance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.reads += 1;
        let g_mtj = self.mtj.read_conductance(rng);
        let r_mtj = if g_mtj > 0.0 { 1.0 / g_mtj } else { f64::INFINITY };
        let total = r_mtj + self.read_series_resistance;
        if total.is_finite() && total > 0.0 {
            1.0 / total
        } else {
            0.0
        }
    }

    /// Ideal read-path conductance (no noise).
    pub fn conductance(&self) -> f64 {
        1.0 / (self.mtj.resistance() + self.read_series_resistance)
    }

    /// Energy of one write pulse at `current` (A) for `duration` (s):
    /// `I² · R_track · t` (the write current never crosses the barrier).
    pub fn write_energy(&self, current: f64, duration: f64) -> f64 {
        current * current * self.track_resistance * duration
    }

    /// Nominal parameters this device was drawn from.
    pub fn nominal(&self) -> MtjParams {
        *self.mtj.params()
    }

    /// Current magnetisation state.
    pub fn state(&self) -> MtjState {
        self.mtj.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(55)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut r = rng();
        let mut dev = SotDevice::new(VariedParams::ideal(), 0.0, &mut r);
        dev.write(true, &mut r);
        assert!(dev.stored_bit());
        dev.write(false, &mut r);
        assert!(!dev.stored_bit());
        assert_eq!(dev.write_count(), 2);
    }

    #[test]
    fn series_resistance_lowers_conductance() {
        let mut r = rng();
        let dev0 = SotDevice::new(VariedParams::ideal(), 0.0, &mut r);
        let dev1 = SotDevice::new(VariedParams::ideal(), 1e6, &mut r);
        assert!(dev1.conductance() < dev0.conductance());
        // 1 MΩ swamps the 5 kΩ junction: conductance ≈ 1 µS.
        assert!((dev1.conductance() - 1.0 / 1.005e6).abs() < 1e-9);
    }

    #[test]
    fn read_does_not_disturb_state() {
        let mut r = rng();
        let mut dev = SotDevice::new(VariedParams::ideal(), 1e5, &mut r);
        dev.write(true, &mut r);
        for _ in 0..100 {
            dev.read_conductance(&mut r);
        }
        assert!(dev.stored_bit(), "SOT reads must never flip the free layer");
        assert_eq!(dev.read_count(), 100);
    }

    #[test]
    fn write_energy_scales_quadratically() {
        let mut r = rng();
        let dev = SotDevice::new(VariedParams::ideal(), 0.0, &mut r);
        let e1 = dev.write_energy(50e-6, 10e-9);
        let e2 = dev.write_energy(100e-6, 10e-9);
        assert!((e2 / e1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_set_and_reset_count_writes() {
        let mut r = rng();
        let mut dev = SotDevice::new(VariedParams::ideal(), 0.0, &mut r);
        let ic = dev.nominal().critical_current;
        dev.try_set(2.0 * ic, &mut r);
        dev.reset();
        assert_eq!(dev.write_count(), 2);
        assert_eq!(dev.state(), MtjState::Parallel);
    }

    #[test]
    fn retuning_series_resistance() {
        let mut r = rng();
        let mut dev = SotDevice::new(VariedParams::ideal(), 1e5, &mut r);
        let g_before = dev.conductance();
        dev.set_read_series_resistance(2e5);
        assert!(dev.conductance() < g_before);
    }
}
