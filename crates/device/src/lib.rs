//! # neuspin-device — spintronic device substrate
//!
//! Physics-level behavioural models of the spintronic devices that the
//! NeuSpin project (DATE 2024) builds on:
//!
//! * [`Mtj`] — a magnetic tunnel junction with parallel / anti-parallel
//!   resistance states, tunnelling-magneto-resistance (TMR) resistance
//!   model, and thermally-activated stochastic switching
//!   ([`SwitchingModel`], Néel–Brown with spin-torque bias).
//! * [`SotDevice`] — a three-terminal SOT-MRAM device with segregated
//!   read and write paths and tunable read-path resistance.
//! * [`VariationModel`] — device-to-device (lognormal) and
//!   cycle-to-cycle (gaussian) variation, plus in-field drift.
//! * [`DefectMap`] / [`DefectKind`] — manufacturing defects (stuck-at-P,
//!   stuck-at-AP, open, short) injected into arrays of devices.
//! * [`SpinRng`] — the SET → read → RESET bitstream random number
//!   generator built from a stochastic MTJ, including the calibration
//!   loop that tunes the write current to a target probability.
//! * [`MultiLevelCell`] — a multi-value cell composed of several MTJs
//!   sharing a read path (used by SpinBayes for quantized weights).
//! * [`AgingState`] — temporal degradation of a cell population under a
//!   virtual clock: Néel–Brown retention flips, read disturb, lognormal
//!   write-endurance wear-out, and conductance drift, with
//!   event-indexed RNG streams for bit-reproducible lifetimes.
//!
//! Everything is deterministic given a seed: all stochastic behaviour is
//! driven by a caller-supplied [`rand::Rng`].
//!
//! ## Example
//!
//! ```
//! use neuspin_device::{Mtj, MtjParams, MtjState};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut mtj = Mtj::nominal(MtjParams::default());
//! assert_eq!(mtj.state(), MtjState::Parallel);
//!
//! // A strong, long pulse switches essentially deterministically.
//! mtj.apply_pulse(2.0 * mtj.params().critical_current, 20e-9, &mut rng);
//! assert_eq!(mtj.state(), MtjState::AntiParallel);
//! ```

pub mod aging;
pub mod defects;
pub mod energy;
pub mod mlc;
pub mod mtj;
pub mod rng;
pub mod sot;
pub mod stats;
pub mod switching;
pub mod variation;

pub use aging::{
    AgingConfig, AgingReport, AgingSnapshot, AgingState, AgingStepReport, TemperatureProfile,
};
pub use defects::{DefectConfusion, DefectKind, DefectMap, DefectMapIter, DefectRates};
pub use energy::DeviceEnergy;
pub use mlc::MultiLevelCell;
pub use mtj::{Mtj, MtjParams, MtjState};
pub use rng::{CalibrationReport, SpinRng, SpinRngState};
pub use sot::SotDevice;
pub use stats::{Bernoulli, Gaussian, LogNormal};
pub use switching::SwitchingModel;
pub use variation::{VariationModel, VariedParams};
