//! Property-based invariants of the device substrate.

use neuspin_device::stats::{Bernoulli, Gaussian, LogNormal, Running};
use neuspin_device::{
    DefectRates, Mtj, MtjParams, MtjState, MultiLevelCell, SwitchingModel, VariationModel,
    VariedParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = MtjParams> {
    (1e3f64..1e5, 0.5f64..3.0, 20.0f64..100.0, 5e-6f64..200e-6).prop_map(
        |(r, tmr, delta, ic)| MtjParams {
            resistance_parallel: r,
            tmr,
            thermal_stability: delta,
            critical_current: ic,
            ..MtjParams::default()
        },
    )
}

proptest! {
    #[test]
    fn resistance_contrast_follows_tmr(params in arb_params()) {
        let mut mtj = Mtj::nominal(params);
        let r_p = mtj.resistance();
        mtj.set_state(MtjState::AntiParallel);
        let r_ap = mtj.resistance();
        prop_assert!(r_ap > r_p);
        prop_assert!((r_ap / r_p - (1.0 + params.tmr)).abs() < 1e-9);
    }

    #[test]
    fn switching_probability_always_valid(
        params in arb_params(),
        current_frac in 0.0f64..3.0,
        duration in 1e-10f64..1e-5,
    ) {
        let m = SwitchingModel::from_params(&params);
        let p = m.probability(current_frac * params.critical_current, duration);
        prop_assert!(p.is_finite());
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn inverse_calibration_roundtrips_any_device(
        params in arb_params(),
        p in 0.02f64..0.98,
    ) {
        let m = SwitchingModel::from_params(&params);
        let i = m.current_for_probability(p, params.pulse_width);
        let back = m.probability(i, params.pulse_width);
        prop_assert!((back - p).abs() < 1e-6, "{p} vs {back}");
    }

    #[test]
    fn variation_draws_are_always_valid_devices(
        sigma in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let var = VariationModel::uniform(sigma);
        let drawn = var.draw(&MtjParams::default(), &mut rng);
        prop_assert!(drawn.validate().is_ok());
    }

    #[test]
    fn mlc_levels_monotone_under_variation(
        k in 1usize..8,
        sigma in 0.0f64..0.05,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(sigma));
        let mut cell = MultiLevelCell::new(k, corner, &mut rng);
        let mut last = f64::NEG_INFINITY;
        for level in 0..=k {
            cell.program(level);
            let g = cell.conductance();
            prop_assert!(g > last, "level {level} must raise conductance");
            last = g;
        }
    }

    #[test]
    fn defect_rates_sum_constraint(rate in 0.0f64..0.25) {
        let rates = DefectRates::uniform(rate);
        prop_assert!((rates.total() - 4.0 * rate).abs() < 1e-12);
    }

    #[test]
    fn gaussian_samples_are_finite(mean in -1e3f64..1e3, std in 0.0f64..100.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Gaussian::new(mean, std);
        for _ in 0..16 {
            prop_assert!(g.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn lognormal_samples_positive(median in 1e-6f64..1e6, sigma in 0.0f64..2.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = LogNormal::from_median_sigma(median, sigma);
        for _ in 0..16 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn bernoulli_respects_extremes(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(!Bernoulli::new(0.0).sample(&mut rng));
        prop_assert!(Bernoulli::new(1.0).sample(&mut rng));
    }

    #[test]
    fn running_stats_match_naive(data in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
        let r: Running = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        prop_assert!((r.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() < 1e-6 * (1.0 + var));
    }
}
