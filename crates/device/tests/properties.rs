//! Property-based invariants of the device substrate.
//!
//! Formerly `proptest!` suites; now deterministic seeded loops over the
//! vendored RNG. Every case's generator is derived from `BASE`, the
//! property's id, and the case index, so any failure names the exact
//! seed that reproduces it.

use neuspin_device::stats::{Bernoulli, Gaussian, LogNormal, Running};
use neuspin_device::{
    DefectRates, Mtj, MtjParams, MtjState, MultiLevelCell, SwitchingModel, VariationModel,
    VariedParams,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0x00DE_71CE_0001;

/// Sampled cases per property (the proptest default was 256 shrink-able
/// cases; 64+ deterministic ones give at least the original coverage of
/// the asserted invariants).
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(case_seed(property, case))
}

fn arb_params(rng: &mut StdRng) -> MtjParams {
    MtjParams {
        resistance_parallel: rng.random_range(1e3f64..1e5),
        tmr: rng.random_range(0.5f64..3.0),
        thermal_stability: rng.random_range(20.0f64..100.0),
        critical_current: rng.random_range(5e-6f64..200e-6),
        ..MtjParams::default()
    }
}

#[test]
fn resistance_contrast_follows_tmr() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let params = arb_params(&mut rng);
        let mut mtj = Mtj::nominal(params);
        let r_p = mtj.resistance();
        mtj.set_state(MtjState::AntiParallel);
        let r_ap = mtj.resistance();
        let seed = case_seed(1, case);
        assert!(r_ap > r_p, "seed {seed:#x}");
        assert!((r_ap / r_p - (1.0 + params.tmr)).abs() < 1e-9, "seed {seed:#x}");
    }
}

#[test]
fn switching_probability_always_valid() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let params = arb_params(&mut rng);
        let current_frac = rng.random_range(0.0f64..3.0);
        let duration = rng.random_range(1e-10f64..1e-5);
        let m = SwitchingModel::from_params(&params);
        let p = m.probability(current_frac * params.critical_current, duration);
        let seed = case_seed(2, case);
        assert!(p.is_finite(), "seed {seed:#x}: p {p}");
        assert!((0.0..=1.0).contains(&p), "seed {seed:#x}: p {p}");
    }
}

#[test]
fn inverse_calibration_roundtrips_any_device() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let params = arb_params(&mut rng);
        let p = rng.random_range(0.02f64..0.98);
        let m = SwitchingModel::from_params(&params);
        let i = m.current_for_probability(p, params.pulse_width);
        let back = m.probability(i, params.pulse_width);
        assert!((back - p).abs() < 1e-6, "seed {:#x}: {p} vs {back}", case_seed(3, case));
    }
}

#[test]
fn variation_draws_are_always_valid_devices() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let sigma = rng.random_range(0.0f64..0.5);
        let var = VariationModel::uniform(sigma);
        let drawn = var.draw(&MtjParams::default(), &mut rng);
        assert!(
            drawn.validate().is_ok(),
            "seed {:#x}: sigma {sigma}: {:?}",
            case_seed(4, case),
            drawn.validate()
        );
    }
}

#[test]
fn mlc_levels_monotone_under_variation() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let k = rng.random_range(1usize..8);
        let sigma = rng.random_range(0.0f64..0.05);
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(sigma));
        let mut cell = MultiLevelCell::new(k, corner, &mut rng);
        let mut last = f64::NEG_INFINITY;
        for level in 0..=k {
            cell.program(level);
            let g = cell.conductance();
            assert!(
                g > last,
                "seed {:#x}: level {level} must raise conductance",
                case_seed(5, case)
            );
            last = g;
        }
    }
}

#[test]
fn defect_rates_sum_constraint() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let rate = rng.random_range(0.0f64..0.25);
        let rates = DefectRates::uniform(rate);
        assert!(
            (rates.total() - 4.0 * rate).abs() < 1e-12,
            "seed {:#x}: rate {rate}",
            case_seed(6, case)
        );
    }
}

#[test]
fn gaussian_samples_are_finite() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let mean = rng.random_range(-1e3f64..1e3);
        let std = rng.random_range(0.0f64..100.0);
        let g = Gaussian::new(mean, std);
        for _ in 0..16 {
            assert!(g.sample(&mut rng).is_finite(), "seed {:#x}", case_seed(7, case));
        }
    }
}

#[test]
fn lognormal_samples_positive() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let median = rng.random_range(1e-6f64..1e6);
        let sigma = rng.random_range(0.0f64..2.0);
        let d = LogNormal::from_median_sigma(median, sigma);
        for _ in 0..16 {
            assert!(d.sample(&mut rng) > 0.0, "seed {:#x}", case_seed(8, case));
        }
    }
}

#[test]
fn bernoulli_respects_extremes() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        assert!(!Bernoulli::new(0.0).sample(&mut rng), "seed {:#x}", case_seed(9, case));
        assert!(Bernoulli::new(1.0).sample(&mut rng), "seed {:#x}", case_seed(9, case));
    }
}

#[test]
fn running_stats_match_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let len = rng.random_range(2usize..50);
        let data: Vec<f64> = (0..len).map(|_| rng.random_range(-100.0f64..100.0)).collect();
        let r: Running = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        let seed = case_seed(10, case);
        assert!((r.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()), "seed {seed:#x}");
        assert!((r.variance() - var).abs() < 1e-6 * (1.0 + var), "seed {seed:#x}");
    }
}
