//! Differential battery: the bit-packed XNOR/popcount kernel against
//! the retained seed oracle `Crossbar::matvec_reference`.
//!
//! Every property drives a *twin pair* of crossbars built bit-for-bit
//! identically (same seeds, same construction plan) — one left on the
//! default `Auto` policy, one pinned to `Reference` — through the same
//! evaluation sequence, then demands exact equality of output bits,
//! op counters, sense-margin accumulators, and downstream RNG
//! position. The scenario grid randomizes geometry (including row
//! counts off the 64-bit word size), defect rates (stuck, open,
//! short), spare-column repair, line remapping, word-line gating, ADC
//! resolution, and input ternary-ness, 96 cases per property with the
//! reproducing seed in every failure message (house idiom of
//! `properties.rs`).

use neuspin_cim::{Crossbar, CrossbarConfig, KernelPolicy, PackedState};
use neuspin_device::{DefectRates, MtjParams, VariationModel, VariedParams};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0xC1FB_0006;

/// Sampled cases per property.
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

/// Builds one randomized noiseless scenario deterministically from its
/// seed: geometry × defects × spares (with repair) × remap × gating.
/// Calling it twice with the same seed yields bit-identical twins.
fn build_noiseless(seed: u64) -> Crossbar {
    let mut plan = StdRng::seed_from_u64(seed);
    let rows = plan.random_range(1usize..130);
    let cols = plan.random_range(1usize..10);
    let spares = plan.random_range(0usize..3);
    // Defect classes: pristine / stuck-only / the full mix with the
    // analog kinds (open, short) that force per-column scalar fallback.
    let defect_rates = match plan.random_range(0u32..4) {
        0 => DefectRates::none(),
        1 => DefectRates { stuck_parallel: 0.03, stuck_antiparallel: 0.03, ..DefectRates::none() },
        2 => DefectRates { stuck_parallel: 0.02, open: 0.01, ..DefectRates::none() },
        _ => DefectRates { stuck_parallel: 0.02, stuck_antiparallel: 0.02, short: 0.01, open: 0.01 },
    };
    let config = CrossbarConfig {
        corner: VariedParams::ideal(),
        defect_rates,
        read_noise: 0.0,
        adc_bits: if plan.random_bool(0.5) { Some(plan.random_range(4u32..9)) } else { None },
        ir_drop: 0.0,
    };
    let weights: Vec<f32> =
        (0..rows * cols).map(|_| if plan.random_bool(0.5) { 1.0 } else { -1.0 }).collect();
    let mut dev = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
    let mut xbar = Crossbar::program_with_spares(&weights, rows, cols, spares, &config, &mut dev);
    // Redundancy repair: fuse clean spares over the worst columns, the
    // order the repair controller would pick them.
    let mut spare = 0;
    for col in 0..cols {
        if spare >= xbar.spare_count() {
            break;
        }
        if xbar.defects().column_defect_count(col) > 0 && xbar.spare_is_clean(spare) {
            xbar.substitute_column(col, spare);
            spare += 1;
        }
    }
    // Line remapping: a rotation permutation on rows, columns, or both.
    if plan.random_bool(0.5) {
        let rshift = plan.random_range(0usize..rows.max(1));
        let cshift = plan.random_range(0usize..cols.max(1));
        xbar.apply_remap(
            (0..rows).map(|i| (i + rshift) % rows).collect(),
            (0..cols).map(|i| (i + cshift) % cols).collect(),
        );
    }
    // Word-line gating: the dropout modules' view of the array. One
    // case in eleven gates *every* row off.
    if plan.random_range(0u32..11) == 0 {
        for r in 0..rows {
            xbar.set_row_enabled(r, false);
        }
    } else if plan.random_bool(0.5) {
        for r in 0..rows {
            if plan.random_bool(0.25) {
                xbar.set_row_enabled(r, false);
            }
        }
    }
    xbar
}

/// A ternary input vector; `zeros` adds inactive lines.
fn ternary_input(rows: usize, zeros: bool, rng: &mut StdRng) -> Vec<f32> {
    (0..rows)
        .map(|_| {
            if zeros && rng.random_bool(0.25) {
                0.0
            } else if rng.random_bool(0.5) {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// Asserts the full observable state of a twin pair matches bit for
/// bit: outputs, counters, sense margins, and RNG stream position.
#[allow(clippy::too_many_arguments)]
fn assert_twins_match(
    seed: u64,
    trial: usize,
    ya: &[f64],
    yb: &[f64],
    a: &Crossbar,
    b: &Crossbar,
    rng_a: &mut StdRng,
    rng_b: &mut StdRng,
) {
    for (j, (va, vb)) in ya.iter().zip(yb).enumerate() {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "seed {seed:#x} trial {trial}: col {j}: packed/auto {va} vs reference {vb}"
        );
    }
    assert_eq!(a.counter(), b.counter(), "seed {seed:#x} trial {trial}: op counters diverged");
    let (ma, ca) = a.sense_margin_parts();
    let (mb, cb) = b.sense_margin_parts();
    assert_eq!(
        (ma.to_bits(), ca),
        (mb.to_bits(), cb),
        "seed {seed:#x} trial {trial}: sense margins diverged"
    );
    assert_eq!(
        rng_a.next_u64(),
        rng_b.next_u64(),
        "seed {seed:#x} trial {trial}: RNG streams desynchronized"
    );
}

#[test]
fn packed_matvec_bit_identical_to_reference_over_scenario_grid() {
    let mut engaged_cases = 0u64;
    for case in 0..CASES {
        let seed = case_seed(1, case);
        let mut a = build_noiseless(seed);
        let mut b = build_noiseless(seed);
        b.set_kernel_policy(KernelPolicy::Reference);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xE7A1);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xE7A1);
        let mut xrng = StdRng::seed_from_u64(seed ^ 0x1297);
        for trial in 0..4 {
            let x = ternary_input(a.rows(), trial % 2 == 0, &mut xrng);
            let ya = a.matvec(&x, &mut rng_a);
            let yb = b.matvec(&x, &mut rng_b);
            assert_twins_match(seed, trial, &ya, &yb, &a, &b, &mut rng_a, &mut rng_b);
        }
        if a.packed_calls() > 0 {
            engaged_cases += 1;
            assert_eq!(
                a.packed_state(),
                PackedState::Ready,
                "seed {seed:#x}: engaged tile must report a ready plane"
            );
        }
    }
    // The grid must actually exercise the packed path, not just fall
    // back everywhere: only tiles whose analog-defect draw spoils more
    // than a quarter of the columns may opt out.
    assert!(
        engaged_cases > CASES / 2,
        "packed kernel engaged on only {engaged_cases}/{CASES} cases"
    );
}

#[test]
fn packed_matmul_bit_identical_to_sequential_matvec_reference() {
    // The batch path must equal `n` sequential per-call evaluations
    // under *every* policy — the unified dispatch fix. The `a` twin
    // runs one `matmul`; the `b` twin runs the per-call loop.
    for (p, policy) in
        [KernelPolicy::Auto, KernelPolicy::Scalar, KernelPolicy::Reference].into_iter().enumerate()
    {
        for case in 0..CASES / 3 {
            let seed = case_seed(2 + p as u64, case);
            let mut a = build_noiseless(seed);
            let mut b = build_noiseless(seed);
            a.set_kernel_policy(policy);
            b.set_kernel_policy(policy);
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let mut xrng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let n = xrng.random_range(1usize..6);
            let batch: Vec<f32> = (0..n)
                .flat_map(|i| ternary_input(a.rows(), i % 2 == 0, &mut xrng))
                .collect();
            let ya = a.matmul(&batch, n, &mut rng_a);
            let mut yb = Vec::with_capacity(n * b.cols());
            for chunk in batch.chunks_exact(b.rows()) {
                yb.extend(b.matvec(chunk, &mut rng_b));
            }
            assert_twins_match(seed, n, &ya, &yb, &a, &b, &mut rng_a, &mut rng_b);
        }
    }
}

#[test]
fn auto_policy_matches_reference_on_ineligible_tiles_and_inputs() {
    // Noisy, IR-dropped, and variation-corner tiles must never engage
    // the packed kernel — and the automatic fallback must stay
    // bit-identical to the oracle, RNG draws included. Non-ternary
    // inputs interleave with ternary ones so the per-call bail-out
    // path is crossed mid-stream.
    for case in 0..CASES {
        let seed = case_seed(5, case);
        let mut plan = StdRng::seed_from_u64(seed);
        let rows = plan.random_range(2usize..80);
        let cols = plan.random_range(1usize..8);
        let kind = plan.random_range(0u32..3);
        let config = CrossbarConfig {
            corner: if kind == 2 {
                VariedParams::new(MtjParams::default(), VariationModel::typical())
            } else {
                VariedParams::ideal()
            },
            defect_rates: DefectRates { stuck_parallel: 0.02, ..DefectRates::none() },
            read_noise: if kind == 0 { 0.05 } else { 0.0 },
            adc_bits: Some(6),
            ir_drop: if kind == 1 { 0.05 } else { 0.0 },
        };
        let weights: Vec<f32> =
            (0..rows * cols).map(|_| if plan.random_bool(0.5) { 1.0 } else { -1.0 }).collect();
        let mut dev = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
        let mut a = Crossbar::program(&weights, rows, cols, &config, &mut dev);
        let mut dev = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
        let mut b = Crossbar::program(&weights, rows, cols, &config, &mut dev);
        b.set_kernel_policy(KernelPolicy::Reference);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x0A11);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x0A11);
        let mut xrng = StdRng::seed_from_u64(seed ^ 0x77AA);
        for trial in 0..3 {
            let x: Vec<f32> = if trial == 1 {
                // Analog input levels: ineligible even on clean tiles.
                (0..rows).map(|_| (xrng.random_range(-4i32..5) as f32) / 4.0).collect()
            } else {
                ternary_input(rows, true, &mut xrng)
            };
            let ya = a.matvec(&x, &mut rng_a);
            let yb = b.matvec(&x, &mut rng_b);
            assert_twins_match(seed, trial, &ya, &yb, &a, &b, &mut rng_a, &mut rng_b);
        }
        if kind != 2 || a.packed_state() != PackedState::Ready {
            // Noise/IR tiles never build a plane; variation corners may
            // build one only if every drawn device still lands ternary
            // (possible but vanishingly rare).
            if kind != 2 {
                assert_eq!(
                    a.packed_calls(),
                    0,
                    "seed {seed:#x}: packed kernel engaged on an ineligible tile"
                );
            }
        }
    }
}

#[test]
fn repair_remap_and_scrub_keep_packed_plane_coherent() {
    // Weight-mutating operations between evaluations must invalidate
    // the packed plane; the next evaluation rebuilds it from the new
    // weights and still matches the oracle exactly.
    for case in 0..CASES {
        let seed = case_seed(6, case);
        let mut a = build_noiseless(seed);
        let mut b = build_noiseless(seed);
        b.set_kernel_policy(KernelPolicy::Reference);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut xrng = StdRng::seed_from_u64(seed ^ 0xF1E1);
        let (rows, cols) = (a.rows(), a.cols());
        for round in 0..3 {
            let x = ternary_input(rows, true, &mut xrng);
            let ya = a.matvec(&x, &mut rng_a);
            let yb = b.matvec(&x, &mut rng_b);
            assert_twins_match(seed, round, &ya, &yb, &a, &b, &mut rng_a, &mut rng_b);
            // Mutate both twins identically between rounds.
            match round {
                0 => {
                    let fresh: Vec<f32> = ternary_input(rows * cols, false, &mut xrng);
                    a.reprogram(&fresh);
                    b.reprogram(&fresh);
                }
                _ => {
                    let rshift = xrng.random_range(1usize..rows.max(2));
                    a.apply_remap(
                        (0..rows).map(|i| (i + rshift) % rows).collect(),
                        (0..cols).collect(),
                    );
                    b.apply_remap(
                        (0..rows).map(|i| (i + rshift) % rows).collect(),
                        (0..cols).collect(),
                    );
                }
            }
            assert_eq!(
                a.packed_state(),
                PackedState::Stale,
                "seed {seed:#x} round {round}: weight mutation must invalidate the plane"
            );
        }
    }
}
