//! Property-based invariants of the CIM substrate.
//!
//! Formerly `proptest!` suites; now deterministic seeded loops over the
//! vendored RNG. Every case's generator is derived from `BASE`, the
//! property's id, and the case index, so any failure names the exact
//! seed that reproduces it.

use neuspin_cim::{
    map_conv, map_linear, Adc, Arbiter, ArrayLimit, ConvMapping, Crossbar, CrossbarConfig,
    MlcCrossbar, WordlineDecoder,
};
use neuspin_device::VariedParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0xC1FB_0002;

/// Sampled cases per property.
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(case_seed(property, case))
}

#[test]
fn adc_output_is_representable_code() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let bits = rng.random_range(1u32..12);
        let x = rng.random_range(-1e3f64..1e3);
        let adc = Adc::new(bits, 100.0);
        let q = adc.quantize(x);
        // The output must be one of the 2^bits mid-rise codes.
        let code = (q + adc.full_scale() - adc.step() / 2.0) / adc.step();
        let seed = case_seed(1, case);
        assert!((code - code.round()).abs() < 1e-6, "seed {seed:#x}: q {q} code {code}");
        assert!(
            code.round() >= 0.0 && (code.round() as u64) < adc.levels(),
            "seed {seed:#x}: code {code}"
        );
    }
}

#[test]
fn crossbar_mvm_matches_dense_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let rows = rng.random_range(2usize..12);
        let cols = rng.random_range(1usize..8);
        // Ideal crossbar == plain dense matvec of its effective weights.
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| if (i * 31 + case as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let mut xbar = Crossbar::program(&w, rows, cols, &CrossbarConfig::ideal(), &mut rng);
        let x: Vec<f32> = (0..rows).map(|i| ((i * 7 % 5) as f32 - 2.0) / 2.0).collect();
        let hw = xbar.matvec(&x, &mut rng);
        for (j, &y) in hw.iter().enumerate() {
            let reference: f64 =
                (0..rows).map(|i| x[i] as f64 * w[i * cols + j] as f64).sum();
            assert!(
                (y - reference).abs() < 1e-9,
                "seed {:#x}: col {j}: {y} vs {reference}",
                case_seed(2, case)
            );
        }
    }
}

#[test]
fn mlc_crossbar_weights_within_range() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let k = rng.random_range(1usize..10);
        let w: Vec<f32> = (0..16).map(|i| (i as f32 / 4.0) - 2.0).collect();
        let xbar = MlcCrossbar::program(&w, 4, 4, k, 1.0, &CrossbarConfig::ideal(), &mut rng);
        for r in 0..4 {
            for c in 0..4 {
                let v = xbar.effective_weight(r, c);
                assert!(
                    (-1.0 - 1e-9..=1.0 + 1e-9).contains(&v),
                    "seed {:#x}: k {k}: {v}",
                    case_seed(3, case)
                );
            }
        }
    }
}

#[test]
fn mapping_conserves_cells() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let cin = rng.random_range(1usize..64);
        let cout = rng.random_range(1usize..64);
        let k = rng.random_range(1usize..6);
        for strategy in [ConvMapping::UnfoldedColumns, ConvMapping::KernelTiled] {
            let r = map_conv(cin, cout, k, strategy, &ArrayLimit::default());
            let tiled: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
            let seed = case_seed(4, case);
            assert_eq!(tiled, cin * k * k * cout, "seed {seed:#x}: {strategy}");
            assert_eq!(r.spatial_reduction(), (k * k) as f64, "seed {seed:#x}: {strategy}");
        }
    }
}

#[test]
fn linear_mapping_tiles_fit_limit() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let inf = rng.random_range(1usize..2000);
        let outf = rng.random_range(1usize..2000);
        let limit = ArrayLimit::default();
        let r = map_linear(inf, outf, &limit);
        let seed = case_seed(5, case);
        for &(h, w) in &r.crossbar_shapes {
            assert!(h <= limit.max_rows && w <= limit.max_cols, "seed {seed:#x}: {h}x{w}");
            assert!(h > 0 && w > 0, "seed {seed:#x}: {h}x{w}");
        }
        let cells: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
        assert_eq!(cells, inf * outf, "seed {seed:#x}");
    }
}

#[test]
fn arbiter_always_in_range() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let n = rng.random_range(1usize..20);
        let mut arb = Arbiter::new(n, VariedParams::ideal(), &mut rng);
        for _ in 0..20 {
            let sel = arb.select(&mut rng);
            assert!(sel < n, "seed {:#x}: {sel} >= {n}", case_seed(6, case));
        }
    }
}

#[test]
fn decoder_ranges_are_exact() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let rows = rng.random_range(2usize..64);
        // Draw (start, len) directly inside the valid region instead of
        // proptest's generate-then-assume rejection.
        let start = rng.random_range(0usize..rows);
        let len = rng.random_range(0usize..=(rows - start));
        let mut d = WordlineDecoder::new(rows);
        d.disable_range(0, rows);
        d.enable_range(start, len);
        let seed = case_seed(7, case);
        assert_eq!(d.enabled_count(), len, "seed {seed:#x}");
        for i in 0..rows {
            assert_eq!(
                d.is_enabled(i),
                (start..start + len).contains(&i),
                "seed {seed:#x}: row {i}"
            );
        }
    }
}
