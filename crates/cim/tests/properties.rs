//! Property-based invariants of the CIM substrate.

use neuspin_cim::{
    map_conv, map_linear, Adc, ArrayLimit, Arbiter, ConvMapping, Crossbar, CrossbarConfig,
    MlcCrossbar, WordlineDecoder,
};
use neuspin_device::VariedParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn adc_output_is_representable_code(bits in 1u32..12, x in -1e3f64..1e3) {
        let adc = Adc::new(bits, 100.0);
        let q = adc.quantize(x);
        // The output must be one of the 2^bits mid-rise codes.
        let code = (q + adc.full_scale() - adc.step() / 2.0) / adc.step();
        prop_assert!((code - code.round()).abs() < 1e-6, "q {q} code {code}");
        prop_assert!(code.round() >= 0.0 && (code.round() as u64) < adc.levels());
    }

    #[test]
    fn crossbar_mvm_matches_dense_reference(
        seed in 0u64..300,
        rows in 2usize..12,
        cols in 1usize..8,
    ) {
        // Ideal crossbar == plain dense matvec of its effective weights.
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| if (i * 31 + seed as usize) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut xbar = Crossbar::program(&w, rows, cols, &CrossbarConfig::ideal(), &mut rng);
        let x: Vec<f32> = (0..rows).map(|i| ((i * 7 % 5) as f32 - 2.0) / 2.0).collect();
        let hw = xbar.matvec(&x, &mut rng);
        for (j, &y) in hw.iter().enumerate() {
            let reference: f64 = (0..rows)
                .map(|i| x[i] as f64 * w[i * cols + j] as f64)
                .sum();
            prop_assert!((y - reference).abs() < 1e-9, "col {j}: {y} vs {reference}");
        }
    }

    #[test]
    fn mlc_crossbar_weights_within_range(
        seed in 0u64..200,
        k in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..16).map(|i| (i as f32 / 4.0) - 2.0).collect();
        let xbar = MlcCrossbar::program(&w, 4, 4, k, 1.0, &CrossbarConfig::ideal(), &mut rng);
        for r in 0..4 {
            for c in 0..4 {
                let v = xbar.effective_weight(r, c);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn mapping_conserves_cells(
        cin in 1usize..64,
        cout in 1usize..64,
        k in 1usize..6,
    ) {
        for strategy in [ConvMapping::UnfoldedColumns, ConvMapping::KernelTiled] {
            let r = map_conv(cin, cout, k, strategy, &ArrayLimit::default());
            let tiled: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
            prop_assert_eq!(tiled, cin * k * k * cout, "{}", strategy);
            prop_assert_eq!(r.spatial_reduction(), (k * k) as f64);
        }
    }

    #[test]
    fn linear_mapping_tiles_fit_limit(
        inf in 1usize..2000,
        outf in 1usize..2000,
    ) {
        let limit = ArrayLimit::default();
        let r = map_linear(inf, outf, &limit);
        for &(h, w) in &r.crossbar_shapes {
            prop_assert!(h <= limit.max_rows && w <= limit.max_cols);
            prop_assert!(h > 0 && w > 0);
        }
        let cells: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
        prop_assert_eq!(cells, inf * outf);
    }

    #[test]
    fn arbiter_always_in_range(n in 1usize..20, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arb = Arbiter::new(n, VariedParams::ideal(), &mut rng);
        for _ in 0..20 {
            prop_assert!(arb.select(&mut rng) < n);
        }
    }

    #[test]
    fn decoder_ranges_are_exact(rows in 2usize..64, start in 0usize..32, len in 0usize..32) {
        prop_assume!(start + len <= rows);
        let mut d = WordlineDecoder::new(rows);
        d.disable_range(0, rows);
        d.enable_range(start, len);
        prop_assert_eq!(d.enabled_count(), len);
        for i in 0..rows {
            prop_assert_eq!(d.is_enabled(i), (start..start + len).contains(&i));
        }
    }
}
