//! Seeded end-to-end checks of the BIST → repair loop on a single
//! crossbar: with enough clean spares a shorts-only array is restored
//! **bit-for-bit** to the defect-free reference, and running out of
//! spares degrades the answer without panicking.

use neuspin_cim::{march_test, repair_columns, BistConfig, Crossbar, CrossbarConfig};
use neuspin_device::{DefectKind, DefectRates};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 16;
const COLS: usize = 16;

fn weights() -> Vec<f32> {
    (0..ROWS * COLS).map(|i| if (i * 37 + 11) % 3 == 0 { 1.0 } else { -1.0 }).collect()
}

fn input() -> Vec<f32> {
    (0..ROWS).map(|i| ((i * 13 % 7) as f32 - 3.0) / 3.0).collect()
}

fn shorts_only(rate: f64) -> CrossbarConfig {
    CrossbarConfig {
        defect_rates: DefectRates { short: rate, ..DefectRates::none() },
        ..CrossbarConfig::ideal()
    }
}

/// With ideal devices every healthy cell is nominal, so once every
/// shorted column has been swapped for a clean spare the crossbar must
/// agree with a defect-free build *exactly* — same bits, not just
/// close.
#[test]
fn bist_repair_restores_shorts_only_crossbar_bit_for_bit() {
    let w = weights();
    let mut rng = StdRng::seed_from_u64(0xFA_017);
    let mut reference =
        Crossbar::program(&w, ROWS, COLS, &CrossbarConfig::ideal(), &mut rng);

    let mut rng = StdRng::seed_from_u64(0xFA_017);
    let mut faulty = Crossbar::program_with_spares(
        &w,
        ROWS,
        COLS,
        8,
        &shorts_only(0.01),
        &mut rng,
    );
    let truth_shorts = faulty.defects().count_of(DefectKind::Short);
    assert!(truth_shorts > 0, "seed must inject at least one short");

    let mut bist_rng = StdRng::seed_from_u64(7);
    let report = march_test(&mut faulty, &BistConfig::default(), &mut bist_rng);
    // Noiseless ideal devices: every short reads at +/- ~83 and must be
    // caught.
    assert!(
        (report.detection_rate(faulty.defects(), &[DefectKind::Short]) - 1.0).abs() < 1e-12,
        "missed shorts: {report:?}"
    );

    let mut estimated = report.estimated;
    let repair = repair_columns(&mut faulty, &mut estimated);
    assert!(repair.fully_repaired(), "8 spares must cover {repair:?}");

    let x = input();
    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    let clean = reference.matvec(&x, &mut rng_a);
    let repaired = faulty.matvec(&x, &mut rng_b);
    assert_eq!(clean, repaired, "repair must restore the exact defect-free output");
}

/// Deliberately starve the repair stage: a heavy short rate against a
/// single spare leaves columns unrepaired, and that is a *reported*
/// condition, not a crash. The crossbar keeps answering (finitely) with
/// whatever signal margin remains.
#[test]
fn spare_exhaustion_degrades_without_panicking() {
    let w = weights();
    let mut rng = StdRng::seed_from_u64(0xFA_018);
    let mut faulty = Crossbar::program_with_spares(
        &w,
        ROWS,
        COLS,
        1,
        &shorts_only(0.15),
        &mut rng,
    );

    let mut bist_rng = StdRng::seed_from_u64(8);
    let report = march_test(&mut faulty, &BistConfig::default(), &mut bist_rng);
    let mut estimated = report.estimated;
    let repair = repair_columns(&mut faulty, &mut estimated);
    assert!(!repair.fully_repaired(), "1 spare cannot absorb a 15 % short rate");
    assert!(!repair.unrepaired.is_empty());
    assert!(repair.success_rate() < 1.0);
    // The lone spare was either consumed or discarded as dirty —
    // either way the budget is gone.
    assert!(
        faulty.available_spares() == 0 || repair.dirty_spares > 0,
        "spare neither used nor rejected: {repair:?}"
    );

    let x = input();
    let mut mv_rng = StdRng::seed_from_u64(100);
    let out = faulty.matvec(&x, &mut mv_rng);
    assert!(out.iter().all(|v| v.is_finite()), "degraded output must stay finite");
}

/// The whole loop is a pure function of its seeds: a second identical
/// run reproduces the estimated map, the repair log, and the outputs.
#[test]
fn fault_management_loop_is_deterministic() {
    let run = || {
        let w = weights();
        let mut rng = StdRng::seed_from_u64(0xFA_019);
        let mut xbar = Crossbar::program_with_spares(
            &w,
            ROWS,
            COLS,
            4,
            &shorts_only(0.02),
            &mut rng,
        );
        let mut bist_rng = StdRng::seed_from_u64(9);
        let report = march_test(&mut xbar, &BistConfig::default(), &mut bist_rng);
        let mut estimated = report.estimated;
        let repair = repair_columns(&mut xbar, &mut estimated);
        let mut mv_rng = StdRng::seed_from_u64(101);
        let out = xbar.matvec(&input(), &mut mv_rng);
        (report.flagged_by_kind, repair.repaired, repair.unrepaired, out)
    };
    assert_eq!(run(), run());
}
