//! Crossbar bit-cells.
//!
//! * [`XnorBitCell`] — the binary-weight cell of the SpinDrop family:
//!   two 1T-1MTJ devices in a differential pair. A `+1` weight stores
//!   (P, AP), a `−1` stores (AP, P); with the input applied
//!   complementarily to the two devices the differential column current
//!   computes input·weight — an XNOR in the binary-input case.
//! * [`MlcBitCell`] — the SpinBayes multi-value cell: a
//!   [`MultiLevelCell`] of several MTJs storing a quantized weight
//!   level.

use neuspin_device::{defects, DefectKind, MultiLevelCell, VariedParams};
use rand::rngs::StdRng;

/// The complete state of an [`XnorBitCell`], as plain data for
/// checkpointing. Unlike most device state, the *conductance levels*
/// must travel with the checkpoint: spare-column substitution physically
/// swaps cells between the array and the spare bank, so a cell's device
/// draw can no longer be derived from the fabrication RNG replay alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XnorCellState {
    /// `(g_parallel, g_antiparallel)` of the plus device.
    pub plus_levels: (f64, f64),
    /// `(g_parallel, g_antiparallel)` of the minus device.
    pub minus_levels: (f64, f64),
    /// Stored sign (`true` = +1).
    pub sign: bool,
    /// Defect on the plus device, if any.
    pub plus_defect: Option<DefectKind>,
    /// Defect on the minus device, if any.
    pub minus_defect: Option<DefectKind>,
    /// Nominal sensing-reference conductances.
    pub reference: (f64, f64),
}

/// A differential two-MTJ binary bit-cell.
///
/// The cell caches its two device conductances (drawn once with
/// device-to-device variation at *program* time — re-programming redraws
/// nothing, devices are physical) and exposes the *effective weight*
/// `(g⁺ − g⁻) / (G_P − G_AP)`, which is `±1` for an ideal pair and
/// drifts with variation and defects.
///
/// # Examples
///
/// ```
/// use neuspin_cim::XnorBitCell;
/// use neuspin_device::VariedParams;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut cell = XnorBitCell::new(VariedParams::ideal(), &mut rng);
/// cell.program(1.0);
/// assert!((cell.effective_weight() - 1.0).abs() < 1e-9);
/// cell.program(-1.0);
/// assert!((cell.effective_weight() + 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct XnorBitCell {
    /// Conductances of the (plus, minus) devices in both states:
    /// `(g_parallel, g_antiparallel)` per device.
    plus_levels: (f64, f64),
    minus_levels: (f64, f64),
    /// Stored sign: `true` = +1.
    sign: bool,
    /// Defect on the plus / minus device, if any.
    plus_defect: Option<DefectKind>,
    minus_defect: Option<DefectKind>,
    /// Nominal state conductances used as the sensing reference.
    reference: (f64, f64),
}

impl XnorBitCell {
    /// Draws the two device instances from a process corner; the cell
    /// starts programmed to `+1`.
    pub fn new(corner: VariedParams, rng: &mut StdRng) -> Self {
        let plus = corner.instantiate(rng);
        let minus = corner.instantiate(rng);
        let p = (1.0 / plus.params().resistance_parallel,
                 1.0 / plus.params().resistance_antiparallel());
        let m = (1.0 / minus.params().resistance_parallel,
                 1.0 / minus.params().resistance_antiparallel());
        let reference = (
            1.0 / corner.nominal.resistance_parallel,
            1.0 / corner.nominal.resistance_antiparallel(),
        );
        Self { plus_levels: p, minus_levels: m, sign: true, plus_defect: None, minus_defect: None, reference }
    }

    /// Programs the stored sign from a real weight (`>= 0` → `+1`).
    pub fn program(&mut self, weight: f32) {
        self.sign = weight >= 0.0;
    }

    /// Exports the complete cell state for checkpointing.
    pub fn state(&self) -> XnorCellState {
        XnorCellState {
            plus_levels: self.plus_levels,
            minus_levels: self.minus_levels,
            sign: self.sign,
            plus_defect: self.plus_defect,
            minus_defect: self.minus_defect,
            reference: self.reference,
        }
    }

    /// Rebuilds a cell from an exported [`XnorCellState`].
    pub fn from_state(state: &XnorCellState) -> Self {
        Self {
            plus_levels: state.plus_levels,
            minus_levels: state.minus_levels,
            sign: state.sign,
            plus_defect: state.plus_defect,
            minus_defect: state.minus_defect,
            reference: state.reference,
        }
    }

    /// The stored sign as `±1`.
    pub fn stored_sign(&self) -> f32 {
        if self.sign { 1.0 } else { -1.0 }
    }

    /// Injects a defect into the plus-side device.
    pub fn inject_plus_defect(&mut self, kind: DefectKind) {
        self.plus_defect = Some(kind);
    }

    /// Injects a defect into the minus-side device.
    pub fn inject_minus_defect(&mut self, kind: DefectKind) {
        self.minus_defect = Some(kind);
    }

    /// Whether either device is defective.
    pub fn is_defective(&self) -> bool {
        self.plus_defect.is_some() || self.minus_defect.is_some()
    }

    /// The defect on the plus-side device, if any.
    pub fn plus_defect(&self) -> Option<DefectKind> {
        self.plus_defect
    }

    /// The defect on the minus-side device, if any.
    pub fn minus_defect(&self) -> Option<DefectKind> {
        self.minus_defect
    }

    /// The defect on either device (plus side wins if both), if any —
    /// the single-kind summary a [`neuspin_device::DefectMap`] carries.
    pub fn defect(&self) -> Option<DefectKind> {
        self.plus_defect.or(self.minus_defect)
    }

    fn device_conductance(levels: (f64, f64), parallel: bool, defect: Option<DefectKind>) -> f64 {
        match defect {
            Some(kind) => defects::defect_conductance(kind, levels.0, levels.1),
            None => {
                if parallel {
                    levels.0
                } else {
                    levels.1
                }
            }
        }
    }

    /// Plus-device conductance for the stored sign (S).
    pub fn plus_conductance(&self) -> f64 {
        // +1: plus device parallel (high G); −1: plus device AP.
        Self::device_conductance(self.plus_levels, self.sign, self.plus_defect)
    }

    /// Minus-device conductance for the stored sign (S).
    pub fn minus_conductance(&self) -> f64 {
        Self::device_conductance(self.minus_levels, !self.sign, self.minus_defect)
    }

    /// The effective analog weight seen by the column:
    /// `(g⁺ − g⁻) / (G_P^nom − G_AP^nom)`.
    pub fn effective_weight(&self) -> f64 {
        (self.plus_conductance() - self.minus_conductance()) / (self.reference.0 - self.reference.1)
    }
}

/// A multi-level (quantized) bit-cell for SpinBayes: `k` MTJs give
/// `k + 1` conductance levels, mapped linearly onto a symmetric weight
/// range `[-w_max, +w_max]`.
///
/// # Examples
///
/// ```
/// use neuspin_cim::MlcBitCell;
/// use neuspin_device::VariedParams;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut cell = MlcBitCell::new(3, 1.0, VariedParams::ideal(), &mut rng);
/// assert_eq!(cell.level_count(), 4);
/// cell.program_weight(1.0);
/// assert!((cell.effective_weight() - 1.0).abs() < 1e-6);
/// cell.program_weight(-1.0);
/// assert!((cell.effective_weight() + 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlcBitCell {
    cell: MultiLevelCell,
    w_max: f64,
    /// Nominal ladder endpoints for normalization.
    g_min: f64,
    g_max: f64,
}

impl MlcBitCell {
    /// Builds a `k`-device cell covering weights `[-w_max, +w_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `w_max <= 0`.
    pub fn new(k: usize, w_max: f64, corner: VariedParams, rng: &mut StdRng) -> Self {
        assert!(w_max > 0.0, "w_max must be positive");
        let ladder = MultiLevelCell::nominal_ladder(&corner, k);
        let cell = MultiLevelCell::new(k, corner, rng);
        Self { cell, w_max, g_min: ladder[0], g_max: ladder[k] }
    }

    /// Number of programmable levels.
    pub fn level_count(&self) -> usize {
        self.cell.level_count()
    }

    /// Quantizes `weight` to the nearest level and programs it.
    /// Values outside `[-w_max, +w_max]` saturate.
    pub fn program_weight(&mut self, weight: f64) {
        let k = self.cell.device_count() as f64;
        let clipped = weight.clamp(-self.w_max, self.w_max);
        let frac = (clipped + self.w_max) / (2.0 * self.w_max); // [0, 1]
        let level = (frac * k).round() as usize;
        self.cell.program(level.min(self.cell.device_count()));
    }

    /// The programmed level.
    pub fn level(&self) -> usize {
        self.cell.level()
    }

    /// Effective analog weight: the cell conductance mapped back through
    /// the *nominal* ladder to the weight range (so variation shows up
    /// as weight error, exactly as the readout periphery would see it).
    pub fn effective_weight(&self) -> f64 {
        let g = self.cell.conductance();
        let frac = (g - self.g_min) / (self.g_max - self.g_min);
        (2.0 * frac - 1.0) * self.w_max
    }

    /// Quantization step in weight units.
    pub fn weight_step(&self) -> f64 {
        2.0 * self.w_max / self.cell.device_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_device::{MtjParams, VariationModel};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ideal_cell_weights_are_exact() {
        let mut r = rng();
        let mut cell = XnorBitCell::new(VariedParams::ideal(), &mut r);
        cell.program(0.7);
        assert!((cell.effective_weight() - 1.0).abs() < 1e-12);
        cell.program(-0.1);
        assert!((cell.effective_weight() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn variation_spreads_effective_weight() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.10));
        let mut spread = 0.0f64;
        for _ in 0..100 {
            let mut cell = XnorBitCell::new(corner, &mut r);
            cell.program(1.0);
            spread = spread.max((cell.effective_weight() - 1.0).abs());
        }
        assert!(spread > 0.02, "10 % variation must perturb weights, spread {spread}");
        assert!(spread < 1.0, "but not flip them");
    }

    #[test]
    fn open_defect_kills_plus_side() {
        let mut r = rng();
        let mut cell = XnorBitCell::new(VariedParams::ideal(), &mut r);
        cell.program(1.0);
        cell.inject_plus_defect(DefectKind::Open);
        assert!(cell.is_defective());
        // Plus side gone: weight collapses towards −g_AP/(ΔG) < 0.
        assert!(cell.effective_weight() < 0.0);
    }

    #[test]
    fn short_defect_dominates() {
        let mut r = rng();
        let mut cell = XnorBitCell::new(VariedParams::ideal(), &mut r);
        cell.program(-1.0);
        cell.inject_plus_defect(DefectKind::Short);
        assert!(cell.effective_weight() > 10.0, "a short blows up the column weight");
    }

    #[test]
    fn stuck_defect_freezes_weight() {
        let mut r = rng();
        let mut cell = XnorBitCell::new(VariedParams::ideal(), &mut r);
        cell.inject_plus_defect(DefectKind::StuckParallel);
        cell.inject_minus_defect(DefectKind::StuckAntiParallel);
        cell.program(1.0);
        let w1 = cell.effective_weight();
        cell.program(-1.0);
        let w2 = cell.effective_weight();
        assert_eq!(w1, w2, "double-stuck cell ignores programming");
        assert!((w1 - 1.0).abs() < 1e-12, "stuck at the +1 pattern");
    }

    #[test]
    fn mlc_levels_cover_range() {
        let mut r = rng();
        let mut cell = MlcBitCell::new(4, 1.0, VariedParams::ideal(), &mut r);
        let mut last = f64::NEG_INFINITY;
        for target in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            cell.program_weight(target);
            let w = cell.effective_weight();
            assert!((w - target).abs() < 1e-9, "level for {target} gives {w}");
            assert!(w > last);
            last = w;
        }
    }

    #[test]
    fn mlc_quantizes_to_nearest() {
        let mut r = rng();
        let mut cell = MlcBitCell::new(2, 1.0, VariedParams::ideal(), &mut r);
        // Levels: −1, 0, +1. 0.4 → 0; 0.6 → 1.
        cell.program_weight(0.4);
        assert_eq!(cell.level(), 1);
        cell.program_weight(0.6);
        assert_eq!(cell.level(), 2);
    }

    #[test]
    fn mlc_saturates_out_of_range() {
        let mut r = rng();
        let mut cell = MlcBitCell::new(2, 1.0, VariedParams::ideal(), &mut r);
        cell.program_weight(5.0);
        assert!((cell.effective_weight() - 1.0).abs() < 1e-9);
        cell.program_weight(-7.0);
        assert!((cell.effective_weight() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn weight_step_matches_levels() {
        let mut r = rng();
        let cell = MlcBitCell::new(4, 1.0, VariedParams::ideal(), &mut r);
        assert!((cell.weight_step() - 0.5).abs() < 1e-12);
    }
}
