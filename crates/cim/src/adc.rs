//! Column readout: sense amplifier and ADC models.


/// A uniform mid-rise ADC over a symmetric range.
///
/// Crossbar column currents are digitised by a shared column ADC; its
/// resolution is one of the CIM design knobs the paper's post-training
/// quantization is aware of.
///
/// # Examples
///
/// ```
/// use neuspin_cim::Adc;
///
/// let adc = Adc::new(4, 8.0);
/// assert_eq!(adc.levels(), 16);
/// // Quantization error bounded by half a step.
/// let x = 3.21;
/// assert!((adc.quantize(x) - x).abs() <= adc.step() / 2.0 + 1e-6);
/// // Saturation at the rails.
/// assert!(adc.quantize(100.0) <= 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates a `bits`-bit ADC over `[-full_scale, +full_scale]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 16, or `full_scale <= 0`.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16, got {bits}");
        assert!(full_scale > 0.0 && full_scale.is_finite(), "full_scale must be positive");
        Self { bits, full_scale }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of output codes.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Full-scale range (the quantizer covers ±this value).
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Quantization step size.
    pub fn step(&self) -> f64 {
        2.0 * self.full_scale / self.levels() as f64
    }

    /// Quantizes a value (clamping to the rails).
    pub fn quantize(&self, x: f64) -> f64 {
        let clamped = x.clamp(-self.full_scale, self.full_scale);
        let step = self.step();
        let code = ((clamped + self.full_scale) / step).floor().min(self.levels() as f64 - 1.0);
        // Mid-rise reconstruction.
        -self.full_scale + (code + 0.5) * step
    }
}

/// Running operation counters for a CIM component — the raw material of
/// the energy model. Counters merge with `+=` semantics via
/// [`OpCounter::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounter {
    /// Individual cell reads (each sensed cell in each column evaluation).
    pub cell_reads: u64,
    /// Device write pulses (programming + RNG cycles' writes).
    pub cell_writes: u64,
    /// Sense-amplifier evaluations.
    pub sa_evals: u64,
    /// ADC conversions.
    pub adc_converts: u64,
    /// Column conversions that clipped at the ADC rails — the
    /// quantizer saw a current outside ±full-scale and saturated.
    pub adc_saturations: u64,
    /// Stochastic-MTJ RNG bits produced.
    pub rng_bits: u64,
    /// SRAM word accesses (scale vectors, arbiter state).
    pub sram_accesses: u64,
    /// Digital accumulate/shift operations.
    pub digital_ops: u64,
}

impl OpCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.cell_reads += other.cell_reads;
        self.cell_writes += other.cell_writes;
        self.sa_evals += other.sa_evals;
        self.adc_converts += other.adc_converts;
        self.adc_saturations += other.adc_saturations;
        self.rng_bits += other.rng_bits;
        self.sram_accesses += other.sram_accesses;
        self.digital_ops += other.digital_ops;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Elementwise saturating difference `self − earlier` — used to
    /// turn monotonic counters into per-window deltas.
    pub fn since(&self, earlier: &OpCounter) -> OpCounter {
        OpCounter {
            cell_reads: self.cell_reads.saturating_sub(earlier.cell_reads),
            cell_writes: self.cell_writes.saturating_sub(earlier.cell_writes),
            sa_evals: self.sa_evals.saturating_sub(earlier.sa_evals),
            adc_converts: self.adc_converts.saturating_sub(earlier.adc_converts),
            adc_saturations: self.adc_saturations.saturating_sub(earlier.adc_saturations),
            rng_bits: self.rng_bits.saturating_sub(earlier.rng_bits),
            sram_accesses: self.sram_accesses.saturating_sub(earlier.sram_accesses),
            digital_ops: self.digital_ops.saturating_sub(earlier.digital_ops),
        }
    }

    /// Total of all counted events (a coarse activity metric).
    pub fn total_events(&self) -> u64 {
        self.cell_reads
            + self.cell_writes
            + self.sa_evals
            + self.adc_converts
            + self.adc_saturations
            + self.rng_bits
            + self.sram_accesses
            + self.digital_ops
    }

    /// Folds a sequence of counters into one — the single merge path
    /// shared by the parallel-join reduction, [`HardwareModel`]'s
    /// block-counter rollup, and the telemetry per-thread buffer merge.
    ///
    /// [`HardwareModel`]: https://docs.rs/neuspin-core
    pub fn merged(counters: impl IntoIterator<Item = OpCounter>) -> OpCounter {
        let mut total = OpCounter::new();
        for c in counters {
            total.merge(&c);
        }
        total
    }
}

impl std::ops::AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_step_and_levels() {
        let adc = Adc::new(4, 8.0);
        assert_eq!(adc.levels(), 16);
        assert!((adc.step() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_error_bounded() {
        let adc = Adc::new(6, 4.0);
        for i in -100..=100 {
            let x = i as f64 * 0.04;
            let q = adc.quantize(x);
            assert!((q - x).abs() <= adc.step() / 2.0 + 1e-12, "x {x} q {q}");
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let adc = Adc::new(3, 1.0);
        let mut last = f64::NEG_INFINITY;
        for i in -20..=20 {
            let q = adc.quantize(i as f64 * 0.1);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn saturation_at_rails() {
        let adc = Adc::new(4, 2.0);
        assert!(adc.quantize(99.0) < 2.0);
        assert!(adc.quantize(-99.0) > -2.0);
        assert_eq!(adc.quantize(99.0), adc.quantize(2.0));
    }

    #[test]
    fn higher_resolution_reduces_error() {
        let coarse = Adc::new(2, 4.0);
        let fine = Adc::new(8, 4.0);
        let x = 1.234;
        assert!((fine.quantize(x) - x).abs() < (coarse.quantize(x) - x).abs());
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn adc_rejects_zero_bits() {
        let _ = Adc::new(0, 1.0);
    }

    #[test]
    fn counter_merge_and_total() {
        let mut a = OpCounter { cell_reads: 5, adc_converts: 2, ..OpCounter::new() };
        let b = OpCounter { cell_reads: 3, rng_bits: 7, ..OpCounter::new() };
        a.merge(&b);
        assert_eq!(a.cell_reads, 8);
        assert_eq!(a.rng_bits, 7);
        assert_eq!(a.total_events(), 8 + 2 + 7);
        a.reset();
        assert_eq!(a, OpCounter::new());
    }

    #[test]
    fn counter_since_computes_delta() {
        let early = OpCounter { cell_reads: 5, rng_bits: 2, ..OpCounter::new() };
        let late = OpCounter { cell_reads: 9, rng_bits: 2, sa_evals: 1, ..OpCounter::new() };
        let d = late.since(&early);
        assert_eq!(d.cell_reads, 4);
        assert_eq!(d.rng_bits, 0);
        assert_eq!(d.sa_evals, 1);
    }

    #[test]
    fn counter_add_assign() {
        let mut a = OpCounter::new();
        a += OpCounter { sa_evals: 4, ..OpCounter::new() };
        assert_eq!(a.sa_evals, 4);
    }

    #[test]
    fn counter_merged_folds_in_order() {
        let parts = [
            OpCounter { cell_reads: 1, adc_saturations: 2, ..OpCounter::new() },
            OpCounter { cell_reads: 10, sa_evals: 3, ..OpCounter::new() },
            OpCounter::new(),
        ];
        let total = OpCounter::merged(parts);
        assert_eq!(total.cell_reads, 11);
        assert_eq!(total.adc_saturations, 2);
        assert_eq!(total.sa_evals, 3);
        assert_eq!(OpCounter::merged([]), OpCounter::new());
    }

    #[test]
    fn saturations_tracked_through_merge_and_since() {
        let mut a = OpCounter { adc_saturations: 4, ..OpCounter::new() };
        a.merge(&OpCounter { adc_saturations: 3, ..OpCounter::new() });
        assert_eq!(a.adc_saturations, 7);
        let d = a.since(&OpCounter { adc_saturations: 2, ..OpCounter::new() });
        assert_eq!(d.adc_saturations, 5);
        assert_eq!(a.total_events(), 7);
    }
}
