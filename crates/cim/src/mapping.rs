//! Layer-to-crossbar mapping strategies (Fig. 1) and their cost
//! reports.
//!
//! Two conv-layer mappings are modelled, exactly as the paper describes:
//!
//! * **Strategy ① (unfolded columns)** — every `K×K×C_in` kernel is
//!   unfolded into one crossbar column (Gokmen et al.), giving one
//!   `(K·K·C_in) × C_out` array per layer (tiled to the physical array
//!   limit).
//! * **Strategy ② (kernel tiling)** — each kernel maps onto a small
//!   `K×K`-row crossbar; the layer becomes a `C_in × C_out` grid of such
//!   crossbars (Peng et al.).
//!
//! The report also counts the dropout modules each Bayesian method needs
//! on that mapping — the quantity behind the paper's 9× module-count
//! reduction for Spatial-SpinDrop.
//!
//! The module also hosts the *fault-aware* placement step of the fault
//! management loop ([`fault_aware_remap`]): given the estimated defect
//! map left over after spare-column repair, it permutes logical
//! rows/columns so the highest-magnitude weights land on the cleanest
//! physical lines.

use neuspin_device::{DefectKind, DefectMap};
use std::fmt;

/// Physical crossbar size limit for tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLimit {
    /// Maximum word lines per physical array.
    pub max_rows: usize,
    /// Maximum bit lines per physical array.
    pub max_cols: usize,
}

impl Default for ArrayLimit {
    /// 256 × 256 arrays — a common macro size in the CIM literature.
    fn default() -> Self {
        Self { max_rows: 256, max_cols: 256 }
    }
}

/// The two conv mapping strategies of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvMapping {
    /// Strategy ①: kernels unfolded into columns of one big array.
    UnfoldedColumns,
    /// Strategy ②: a `C_in × C_out` grid of `K×K` sub-arrays.
    KernelTiled,
}

impl fmt::Display for ConvMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvMapping::UnfoldedColumns => f.write_str("strategy-1 (unfolded columns)"),
            ConvMapping::KernelTiled => f.write_str("strategy-2 (kernel tiled)"),
        }
    }
}

/// A layer's logical shape, the unit of mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerShape {
    /// A fully-connected layer `in → out`.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// A 2-D convolution with square kernel.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel side.
        kernel: usize,
    },
}

impl LayerShape {
    /// Number of crossbar input rows the layer occupies logically.
    pub fn logical_rows(&self) -> usize {
        match *self {
            LayerShape::Linear { in_features, .. } => in_features,
            LayerShape::Conv { in_channels, kernel, .. } => in_channels * kernel * kernel,
        }
    }

    /// Number of crossbar output columns.
    pub fn logical_cols(&self) -> usize {
        match *self {
            LayerShape::Linear { out_features, .. } => out_features,
            LayerShape::Conv { out_channels, .. } => out_channels,
        }
    }

    /// Weight count.
    pub fn weights(&self) -> usize {
        self.logical_rows() * self.logical_cols()
    }
}

/// The mapping cost report for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingReport {
    /// The mapped layer.
    pub shape: LayerShape,
    /// Strategy used (None for linear layers).
    pub strategy: Option<ConvMapping>,
    /// Physical arrays instantiated after tiling.
    pub crossbar_count: usize,
    /// `(rows, cols)` of each physical array.
    pub crossbar_shapes: Vec<(usize, usize)>,
    /// Total programmed cells (2 MTJs each for binary cells).
    pub cells: usize,
    /// Dropout modules needed by SpinDrop (one per input neuron row).
    pub spindrop_modules: usize,
    /// Dropout modules needed by Spatial-SpinDrop (one per input
    /// feature map / gated group).
    pub spatial_modules: usize,
    /// Dropout modules needed by SpinScaleDrop (always one).
    pub scale_modules: usize,
}

impl MappingReport {
    /// Module-count reduction of spatial vs per-neuron dropout (the
    /// paper's 9× for 3×3 kernels).
    pub fn spatial_reduction(&self) -> f64 {
        self.spindrop_modules as f64 / self.spatial_modules.max(1) as f64
    }
}

fn tile(rows: usize, cols: usize, limit: &ArrayLimit) -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    let mut r = 0;
    while r < rows {
        let h = (rows - r).min(limit.max_rows);
        let mut c = 0;
        while c < cols {
            let w = (cols - c).min(limit.max_cols);
            shapes.push((h, w));
            c += w;
        }
        r += h;
    }
    shapes
}

/// Maps a fully-connected layer onto physical arrays.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn map_linear(in_features: usize, out_features: usize, limit: &ArrayLimit) -> MappingReport {
    assert!(in_features > 0 && out_features > 0, "dimensions must be positive");
    let shape = LayerShape::Linear { in_features, out_features };
    let shapes = tile(in_features, out_features, limit);
    MappingReport {
        shape,
        strategy: None,
        crossbar_count: shapes.len(),
        cells: shape.weights(),
        crossbar_shapes: shapes,
        spindrop_modules: in_features,
        spatial_modules: in_features, // no spatial grouping in FC layers
        scale_modules: 1,
    }
}

/// Maps a convolution onto physical arrays under the given strategy.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn map_conv(
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    strategy: ConvMapping,
    limit: &ArrayLimit,
) -> MappingReport {
    assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "dimensions must be positive");
    let shape = LayerShape::Conv { in_channels, out_channels, kernel };
    let logical_rows = shape.logical_rows();
    let shapes = match strategy {
        ConvMapping::UnfoldedColumns => tile(logical_rows, out_channels, limit),
        ConvMapping::KernelTiled => {
            // A C_in × C_out grid of K·K-row single-kernel arrays,
            // merged along columns up to the physical column limit.
            let cols_per_array = limit.max_cols.min(out_channels);
            let arrays_per_row_of_grid = out_channels.div_ceil(cols_per_array);
            let mut shapes = Vec::new();
            for _cin in 0..in_channels {
                for a in 0..arrays_per_row_of_grid {
                    let w = if a + 1 == arrays_per_row_of_grid {
                        out_channels - a * cols_per_array
                    } else {
                        cols_per_array
                    };
                    shapes.push((kernel * kernel, w));
                }
            }
            shapes
        }
    };
    MappingReport {
        shape,
        strategy: Some(strategy),
        crossbar_count: shapes.len(),
        cells: shape.weights(),
        crossbar_shapes: shapes,
        spindrop_modules: logical_rows,
        spatial_modules: in_channels,
        scale_modules: 1,
    }
}

/// A line permutation pair for [`crate::Crossbar::apply_remap`]:
/// `row_src[p]` / `col_src[p]` give the *logical* line carried by
/// physical line `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remap {
    /// Logical row on each physical row.
    pub row_src: Vec<usize>,
    /// Logical column on each physical column.
    pub col_src: Vec<usize>,
}

impl Remap {
    /// The identity remap (logical = physical).
    pub fn identity(rows: usize, cols: usize) -> Self {
        Self { row_src: (0..rows).collect(), col_src: (0..cols).collect() }
    }

    /// Whether this remap moves nothing.
    pub fn is_identity(&self) -> bool {
        self.row_src.iter().enumerate().all(|(i, &v)| i == v)
            && self.col_src.iter().enumerate().all(|(i, &v)| i == v)
    }
}

/// Severity weight of one estimated defect for placement purposes.
/// Mirrors the repair controller's ranking: shorts poison a whole
/// column sum, opens lose one differential arm, stuck-at freezes a
/// single weight.
fn placement_severity(kind: DefectKind) -> u64 {
    match kind {
        DefectKind::Short => 100,
        DefectKind::Open => 10,
        DefectKind::StuckParallel | DefectKind::StuckAntiParallel => 1,
    }
}

/// Computes a fault-aware placement: logical lines ranked by total
/// weight magnitude are assigned to physical lines ranked by estimated
/// cleanliness, so the most important weights sit on the least damaged
/// hardware (and any shorts the spares could not absorb end up under
/// the least important columns).
///
/// `weights` are the *logical* real-valued weights, row-major
/// `rows × cols`; `estimated` is the post-repair defect estimate in
/// physical coordinates. Fully deterministic: ties break by line index.
///
/// # Panics
///
/// Panics if `weights.len() != rows * cols` or the map's shape
/// disagrees.
pub fn fault_aware_remap(
    estimated: &DefectMap,
    weights: &[f32],
    rows: usize,
    cols: usize,
) -> Remap {
    assert_eq!(weights.len(), rows * cols, "weight count mismatch");
    assert_eq!(estimated.shape(), (rows, cols), "defect map shape mismatch");

    // Damage per physical line.
    let mut row_damage = vec![0u64; rows];
    let mut col_damage = vec![0u64; cols];
    for ((r, c), kind) in estimated {
        let s = placement_severity(kind);
        row_damage[r] += s;
        col_damage[c] += s;
    }
    // Importance per logical line.
    let mut row_weight = vec![0.0f64; rows];
    let mut col_weight = vec![0.0f64; cols];
    for r in 0..rows {
        for c in 0..cols {
            let m = weights[r * cols + c].abs() as f64;
            row_weight[r] += m;
            col_weight[c] += m;
        }
    }

    let assign = |damage: &[u64], importance: &[f64]| -> Vec<usize> {
        let n = damage.len();
        // Physical lines, cleanest first.
        let mut physical: Vec<usize> = (0..n).collect();
        physical.sort_by(|&a, &b| damage[a].cmp(&damage[b]).then(a.cmp(&b)));
        // Logical lines, most important first.
        let mut logical: Vec<usize> = (0..n).collect();
        logical.sort_by(|&a, &b| {
            importance[b].partial_cmp(&importance[a]).unwrap().then(a.cmp(&b))
        });
        let mut src = vec![0usize; n];
        for (p, l) in physical.into_iter().zip(logical) {
            src[p] = l;
        }
        src
    };

    Remap {
        row_src: assign(&row_damage, &row_weight),
        col_src: assign(&col_damage, &col_weight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping_single_tile() {
        let r = map_linear(128, 64, &ArrayLimit::default());
        assert_eq!(r.crossbar_count, 1);
        assert_eq!(r.crossbar_shapes, vec![(128, 64)]);
        assert_eq!(r.cells, 128 * 64);
        assert_eq!(r.spindrop_modules, 128);
        assert_eq!(r.scale_modules, 1);
    }

    #[test]
    fn linear_mapping_tiles_large_layers() {
        let r = map_linear(600, 300, &ArrayLimit::default());
        // 600 rows → 3 row-tiles (256+256+88); 300 cols → 2 col-tiles.
        assert_eq!(r.crossbar_count, 6);
        let total_cells: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
        assert_eq!(total_cells, 600 * 300);
    }

    #[test]
    fn conv_strategy1_unfolds_kernels() {
        let r = map_conv(16, 32, 3, ConvMapping::UnfoldedColumns, &ArrayLimit::default());
        // 16·9 = 144 rows ≤ 256 → single tile.
        assert_eq!(r.crossbar_shapes, vec![(144, 32)]);
        assert_eq!(r.spindrop_modules, 144);
        assert_eq!(r.spatial_modules, 16);
        assert!((r.spatial_reduction() - 9.0).abs() < 1e-12, "K² = 9 for 3×3");
    }

    #[test]
    fn conv_strategy2_grid_of_kernel_arrays() {
        let r = map_conv(16, 32, 3, ConvMapping::KernelTiled, &ArrayLimit::default());
        assert_eq!(r.crossbar_count, 16, "one 9×32 array per input channel");
        assert!(r.crossbar_shapes.iter().all(|&(h, w)| h == 9 && w == 32));
        assert_eq!(r.spatial_modules, 16);
    }

    #[test]
    fn strategy2_splits_wide_outputs() {
        let limit = ArrayLimit { max_rows: 256, max_cols: 20 };
        let r = map_conv(4, 50, 3, ConvMapping::KernelTiled, &limit);
        // 50 cols / 20 → 3 arrays per input channel (20+20+10).
        assert_eq!(r.crossbar_count, 12);
        let cells: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
        assert_eq!(cells, 4 * 9 * 50);
    }

    #[test]
    fn both_strategies_map_all_weights() {
        for strategy in [ConvMapping::UnfoldedColumns, ConvMapping::KernelTiled] {
            let r = map_conv(8, 24, 5, strategy, &ArrayLimit::default());
            let cells: usize = r.crossbar_shapes.iter().map(|(h, w)| h * w).sum();
            assert_eq!(cells, 8 * 25 * 24, "{strategy}");
            assert_eq!(r.cells, 8 * 25 * 24);
        }
    }

    #[test]
    fn module_reduction_scales_with_kernel() {
        let r5 = map_conv(8, 8, 5, ConvMapping::UnfoldedColumns, &ArrayLimit::default());
        assert!((r5.spatial_reduction() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert!(ConvMapping::UnfoldedColumns.to_string().contains("strategy-1"));
        assert!(ConvMapping::KernelTiled.to_string().contains("strategy-2"));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = map_linear(0, 4, &ArrayLimit::default());
    }

    #[test]
    fn clean_map_yields_importance_order_only() {
        let est = DefectMap::empty(2, 3);
        // Logical col 1 carries the most weight, then 0, then 2.
        let w = vec![
            0.1, 0.9, 0.0, //
            0.2, 0.8, 0.1, //
        ];
        let remap = fault_aware_remap(&est, &w, 2, 3);
        // All physical lines equally clean → cleanest-first is index
        // order, so physical 0 gets the heaviest logical line.
        assert_eq!(remap.col_src, vec![1, 0, 2]);
        assert_eq!(remap.row_src, vec![1, 0], "row 1 is heavier (1.1 vs 1.0)");
    }

    #[test]
    fn damaged_column_gets_lightest_weights() {
        let mut est = DefectMap::empty(2, 3);
        est.inject(0, 0, DefectKind::Short);
        let w = vec![
            0.9, 0.5, 0.1, //
            0.9, 0.5, 0.1, //
        ];
        let remap = fault_aware_remap(&est, &w, 2, 3);
        // Physical column 0 is poisoned → carries the lightest logical
        // column (2); clean physical 1 and 2 carry logical 0 and 1.
        assert_eq!(remap.col_src[0], 2);
        assert_eq!(remap.col_src, vec![2, 0, 1]);
        // The shorted row likewise repels the heavier logical row.
        assert_eq!(remap.row_src, vec![1, 0]);
    }

    #[test]
    fn severity_ranks_short_above_many_stuck() {
        let mut est = DefectMap::empty(4, 2);
        est.inject(0, 0, DefectKind::Short);
        for r in 0..4 {
            est.inject(r, 1, DefectKind::StuckParallel);
        }
        let w = vec![1.0f32; 8];
        let remap = fault_aware_remap(&est, &w, 4, 2);
        // 4 stuck-at (severity 4) is still cleaner than one short
        // (severity 100): logical col 0 goes to physical col 1.
        assert_eq!(remap.col_src, vec![1, 0]);
    }

    #[test]
    fn identity_helpers() {
        let id = Remap::identity(3, 2);
        assert!(id.is_identity());
        assert_eq!(id.row_src, vec![0, 1, 2]);
        let est = DefectMap::empty(1, 2);
        let remap = fault_aware_remap(&est, &[0.5, 0.5], 1, 2);
        assert!(remap.is_identity(), "uniform weights + clean array move nothing");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn remap_rejects_shape_mismatch() {
        let est = DefectMap::empty(2, 2);
        let _ = fault_aware_remap(&est, &[1.0; 6], 2, 3);
    }
}
