//! # neuspin-cim — computation-in-memory substrate
//!
//! A behavioural simulator of the spintronic crossbar architecture the
//! NeuSpin project targets:
//!
//! * [`XnorBitCell`] / [`MlcBitCell`] — binary (differential 2×1T-1MTJ)
//!   and multi-level bit-cells;
//! * [`Crossbar`] / [`MlcCrossbar`] — analog matrix-vector-multiply
//!   arrays with programming-time device variation, defect injection,
//!   cycle-to-cycle read noise, and ADC quantization;
//! * [`WordlineDecoder`] — multi-enable row decoding (Fig. 1);
//! * [`SpinDropModule`], [`SpatialDropModule`], [`ScaleDropModule`],
//!   [`Arbiter`] — the four stochastic-MTJ dropout/selection modules;
//! * [`mapping`] — layer-to-crossbar mapping strategies ①/② with
//!   module-count reports, plus fault-aware line placement
//!   ([`fault_aware_remap`]);
//! * [`bist`] / [`repair`] — the active fault-management front half:
//!   march-test defect estimation and spare-column redundancy repair;
//! * [`OpCounter`] — the operation tallies the energy model consumes.
//!
//! ## Example
//!
//! ```
//! use neuspin_cim::{Crossbar, CrossbarConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // A 4-input, 2-output binary layer on an ideal crossbar.
//! let weights = vec![
//!     1.0, -1.0,
//!     1.0, 1.0,
//!     -1.0, 1.0,
//!     1.0, -1.0,
//! ];
//! let mut xbar = Crossbar::program(&weights, 4, 2, &CrossbarConfig::ideal(), &mut rng);
//! let y = xbar.matvec(&[1.0, 1.0, 1.0, 1.0], &mut rng);
//! assert_eq!(y.len(), 2);
//! assert!((y[0] - 2.0).abs() < 1e-9);
//! ```

pub mod adc;
pub mod bist;
pub mod bitcell;
pub mod crossbar;
pub mod decoder;
pub mod dropout_modules;
pub mod mapping;
mod packed;
pub mod repair;

pub use adc::{Adc, OpCounter};
pub use bist::{march_test, BistConfig, BistReport};
pub use bitcell::{MlcBitCell, XnorBitCell, XnorCellState};
pub use crossbar::{
    AgingHookState, Crossbar, CrossbarConfig, CrossbarState, KernelPolicy, MlcCrossbar,
    MlcCrossbarState, PackedState, SpareColumnState,
};
pub use decoder::WordlineDecoder;
pub use dropout_modules::{
    Arbiter, ArbiterState, ScaleDropModule, SpatialDropModule, SpinDropModule,
};
pub use mapping::{
    fault_aware_remap, map_conv, map_linear, ArrayLimit, ConvMapping, LayerShape, MappingReport,
    Remap,
};
pub use repair::{repair_columns, RepairReport};
