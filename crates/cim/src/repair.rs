//! Spare-column redundancy repair.
//!
//! Crossbar macros fabricate a handful of spare columns next to the
//! main array ([`Crossbar::program_with_spares`]); after the march-test
//! BIST recovers an estimated defect map, the repair controller fuses
//! spares in place of the worst columns. This replaces the old
//! `DefectMap::repair_shorts` hand-wave with a modeled flow that:
//!
//! * ranks columns by estimated fault *severity* (a short poisons the
//!   whole column's analog sum; an open loses one differential arm;
//!   stuck-at cells merely freeze one weight),
//! * spends clean spares on the worst columns first (spares come from
//!   the same process corner and can themselves be born defective —
//!   dirty spares are discarded, not fused),
//! * **runs out**: columns left over when spares are exhausted stay
//!   faulty and are reported, so the caller can fall back to
//!   fault-aware remapping and uncertainty gating.
//!
//! Deterministic: same estimated map + same array ⇒ same decisions.

use crate::crossbar::Crossbar;
use neuspin_device::{DefectKind, DefectMap};

/// Relative severity used to rank columns for repair.
fn kind_severity(kind: DefectKind) -> u64 {
    match kind {
        DefectKind::Short => 100,
        DefectKind::Open => 10,
        DefectKind::StuckParallel | DefectKind::StuckAntiParallel => 1,
    }
}

/// Per-column severity score under an estimated defect map.
pub fn column_severity(estimated: &DefectMap, col: usize) -> u64 {
    estimated
        .iter()
        .filter(|&((_, c), _)| c == col)
        .map(|(_, kind)| kind_severity(kind))
        .sum()
}

/// Outcome of a repair run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// `(column, spare)` substitutions performed, in order.
    pub repaired: Vec<(usize, usize)>,
    /// Spares discarded because they were themselves defective.
    pub dirty_spares: usize,
    /// Columns that needed repair but got none (spares exhausted),
    /// worst first.
    pub unrepaired: Vec<usize>,
}

impl RepairReport {
    /// Whether every column that needed a spare got one.
    pub fn fully_repaired(&self) -> bool {
        self.unrepaired.is_empty()
    }

    /// Fraction of needy columns that were repaired (1 if none needed).
    pub fn success_rate(&self) -> f64 {
        let total = self.repaired.len() + self.unrepaired.len();
        if total == 0 {
            1.0
        } else {
            self.repaired.len() as f64 / total as f64
        }
    }
}

/// Repairs the crossbar using its spare columns, guided by the
/// *estimated* defect map from the BIST (which may contain noise-induced
/// misclassifications — the controller acts on what the tester saw, not
/// on ground truth).
///
/// Columns containing at least one estimated **short or open** are
/// repair candidates, ranked by severity (worst first, ties by column
/// index for determinism). Each candidate consumes the next clean spare
/// via [`Crossbar::substitute_column`]; the estimated map is updated in
/// place (a fused spare was screened clean). When no clean spare
/// remains, the remaining candidates are reported as unrepaired — no
/// panic, graceful degradation is the caller's job.
pub fn repair_columns(xbar: &mut Crossbar, estimated: &mut DefectMap) -> RepairReport {
    // Candidates: columns with a hard fault, worst first.
    let mut candidates: Vec<(u64, usize)> = (0..xbar.cols())
        .filter(|&c| {
            estimated
                .iter()
                .any(|((_, col), kind)| {
                    col == c && matches!(kind, DefectKind::Short | DefectKind::Open)
                })
        })
        .map(|c| (column_severity(estimated, c), c))
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut repaired = Vec::new();
    let mut unrepaired = Vec::new();
    let mut dirty_spares = 0usize;
    let mut next_spare = 0usize;
    for (_, col) in candidates {
        // Advance past dirty spares (screened at production test).
        let mut chosen = None;
        while next_spare < xbar.spare_count() {
            if xbar.spare_is_clean(next_spare) {
                chosen = Some(next_spare);
                break;
            }
            dirty_spares += 1;
            next_spare += 1;
        }
        match chosen {
            Some(k) => {
                xbar.substitute_column(col, k);
                estimated.clear_column(col);
                repaired.push((col, k));
                next_spare += 1;
            }
            None => unrepaired.push(col),
        }
    }
    RepairReport { repaired, dirty_spares, unrepaired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bist::{march_test, BistConfig};
    use crate::crossbar::CrossbarConfig;
    use neuspin_device::DefectRates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shorts_config(rate: f64) -> CrossbarConfig {
        CrossbarConfig {
            defect_rates: DefectRates { short: rate, ..DefectRates::none() },
            read_noise: 0.02,
            ..CrossbarConfig::default()
        }
    }

    #[test]
    fn repair_clears_estimated_and_ground_truth_columns() {
        let mut r = StdRng::seed_from_u64(5);
        let w = vec![1.0f32; 128];
        let mut xbar = Crossbar::program_with_spares(&w, 8, 16, 8, &shorts_config(0.04), &mut r);
        assert!(xbar.defects().defect_count() > 0, "fixture needs shorts");
        let mut est = march_test(&mut xbar, &BistConfig::default(), &mut r).estimated;
        let shorted: Vec<usize> =
            (0..16).filter(|&c| est.column_defect_count(c) > 0).collect();
        let report = repair_columns(&mut xbar, &mut est);
        assert!(report.fully_repaired(), "8 spares cover {} columns", shorted.len());
        assert_eq!(report.repaired.len(), shorted.len());
        for c in shorted {
            assert_eq!(est.column_defect_count(c), 0);
            assert_eq!(xbar.defects().column_defect_count(c), 0);
        }
    }

    #[test]
    fn exhausting_spares_reports_unrepaired_without_panicking() {
        let mut r = StdRng::seed_from_u64(9);
        let w = vec![1.0f32; 512];
        // Heavy shorts, one spare: most columns must go unrepaired.
        let mut xbar = Crossbar::program_with_spares(&w, 16, 32, 1, &shorts_config(0.08), &mut r);
        let mut est = march_test(&mut xbar, &BistConfig::default(), &mut r).estimated;
        let needy: Vec<usize> = (0..32).filter(|&c| est.column_defect_count(c) > 0).collect();
        assert!(needy.len() > 2, "fixture needs more faulty columns than spares");
        let report = repair_columns(&mut xbar, &mut est);
        assert!(report.repaired.len() <= 1);
        assert!(!report.fully_repaired());
        assert!(report.success_rate() < 1.0);
        assert_eq!(report.repaired.len() + report.unrepaired.len(), needy.len());
    }

    #[test]
    fn worst_columns_get_spares_first() {
        let mut r = StdRng::seed_from_u64(3);
        let w = vec![1.0f32; 64];
        let mut xbar =
            Crossbar::program_with_spares(&w, 8, 8, 1, &CrossbarConfig::ideal(), &mut r);
        // Hand-build an estimate: column 2 has one open, column 5 two shorts.
        let mut est = DefectMap::empty(8, 8);
        est.inject(0, 2, DefectKind::Open);
        est.inject(1, 5, DefectKind::Short);
        est.inject(2, 5, DefectKind::Short);
        let report = repair_columns(&mut xbar, &mut est);
        assert_eq!(report.repaired, vec![(5, 0)], "the shorted column outranks the open");
        assert_eq!(report.unrepaired, vec![2]);
    }

    #[test]
    fn stuck_only_columns_are_not_repair_candidates() {
        let mut r = StdRng::seed_from_u64(4);
        let w = vec![1.0f32; 64];
        let mut xbar =
            Crossbar::program_with_spares(&w, 8, 8, 4, &CrossbarConfig::ideal(), &mut r);
        let mut est = DefectMap::empty(8, 8);
        est.inject(0, 1, DefectKind::StuckParallel);
        est.inject(3, 6, DefectKind::StuckAntiParallel);
        let report = repair_columns(&mut xbar, &mut est);
        assert!(report.repaired.is_empty(), "stuck-at is tolerable, spares are precious");
        assert!(report.fully_repaired());
        assert_eq!(xbar.available_spares(), 4);
    }

    #[test]
    fn success_rate_is_one_when_nothing_needed() {
        let mut r = StdRng::seed_from_u64(6);
        let w = vec![1.0f32; 16];
        let mut xbar = Crossbar::program(&w, 4, 4, &CrossbarConfig::ideal(), &mut r);
        let mut est = DefectMap::empty(4, 4);
        let report = repair_columns(&mut xbar, &mut est);
        assert_eq!(report.success_rate(), 1.0);
    }
}
