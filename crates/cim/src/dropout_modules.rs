//! Hardware dropout modules built from stochastic MTJs.
//!
//! All four NeuSpin dropout designs reduce to the same primitive — a
//! [`SpinRng`] producing calibrated Bernoulli bits — but differ in *how
//! many* modules a layer needs and *what* each bit gates:
//!
//! | Module | Gates | Modules per conv layer |
//! |---|---|---|
//! | [`SpinDropModule`] | one word-line pair (one neuron) | `K·K·C_in` |
//! | [`SpatialDropModule`] | one feature map (group of rows) | `C_in` |
//! | [`ScaleDropModule`] | the layer's scale vector | `1` |
//! | [`Arbiter`] | which of `N` crossbars is read | `⌈log₂N⌉` bits/pass |

use crate::adc::OpCounter;
use neuspin_device::{SpinRng, SpinRngState, VariedParams};
use rand::rngs::StdRng;

/// Mutable state of an [`Arbiter`] — the bias point and stream position
/// of each bit source plus the consumed-bit tally. Captured by
/// [`Arbiter::state`] for die checkpoints and reapplied by
/// [`Arbiter::restore_state`] onto an arbiter built by the same
/// deterministic constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterState {
    /// Per-bit-source device state, in selection order.
    pub bit_sources: Vec<SpinRngState>,
    /// Total RNG bits consumed so far.
    pub bits_used: u64,
}

/// A per-neuron dropout module (SpinDrop, §III-A1): one stochastic MTJ
/// whose SET→read→RESET cycle yields one drop/keep decision for one
/// word-line pair.
///
/// # Examples
///
/// ```
/// use neuspin_cim::SpinDropModule;
/// use neuspin_device::VariedParams;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut module = SpinDropModule::new(0.25, VariedParams::ideal(), &mut rng);
/// let drops = (0..1000).filter(|_| module.sample(&mut rng)).count();
/// assert!((drops as f64 / 1000.0 - 0.25).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpinDropModule {
    rng: SpinRng,
    target_p: f64,
}

impl SpinDropModule {
    /// Builds and nominal-calibrates a module for drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    pub fn new(p: f64, corner: VariedParams, rng: &mut StdRng) -> Self {
        let mut spin = SpinRng::new(corner, rng);
        spin.calibrate_nominal(p);
        Self { rng: spin, target_p: p }
    }

    /// The design-target drop probability.
    pub fn target_p(&self) -> f64 {
        self.target_p
    }

    /// The device's true probability at its bias point (oracle).
    pub fn realized_p(&self) -> f64 {
        self.rng.realized_p()
    }

    /// Closed-loop post-fabrication tuning: adjusts the bias current
    /// against the device's *measured* switch rate until the realized
    /// probability is within `tolerance` of the target (spending
    /// measurement bits). Returns the calibration report.
    pub fn tune(&mut self, bits_per_step: u32, tolerance: f64, rng: &mut StdRng)
        -> neuspin_device::CalibrationReport {
        self.rng.calibrate_measured(self.target_p, bits_per_step, tolerance, 25, rng)
    }

    /// Draws one drop decision (`true` = drop the neuron).
    pub fn sample(&mut self, rng: &mut StdRng) -> bool {
        self.rng.next_bit(rng)
    }

    /// Total RNG bits consumed so far.
    pub fn bits_used(&self) -> u64 {
        self.rng.bits_generated()
    }

    /// The underlying device's mutable state (bias point, target, stream
    /// position) for die checkpoints.
    pub fn rng_state(&self) -> SpinRngState {
        self.rng.state()
    }

    /// Reapplies a captured device state (see [`SpinRng::restore_state`]).
    pub fn restore_rng_state(&mut self, state: &SpinRngState) {
        self.rng.restore_state(state);
    }
}

/// A per-feature-map dropout module (Spatial-SpinDrop, §III-A2): the
/// same MTJ primitive, but its bit gates a whole group of consecutive
/// word lines through the multi-enable decoder (Fig. 1), so a conv layer
/// needs only `C_in` modules instead of `K·K·C_in`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialDropModule {
    inner: SpinDropModule,
    /// How many word lines one decision gates (`K·K` for strategy ①, a
    /// whole `K×K` sub-crossbar for strategy ②).
    rows_gated: usize,
}

impl SpatialDropModule {
    /// Builds a module that gates `rows_gated` word lines per decision.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` or `rows_gated == 0`.
    pub fn new(p: f64, rows_gated: usize, corner: VariedParams, rng: &mut StdRng) -> Self {
        assert!(rows_gated > 0, "rows_gated must be positive");
        Self { inner: SpinDropModule::new(p, corner, rng), rows_gated }
    }

    /// Word lines gated by one decision.
    pub fn rows_gated(&self) -> usize {
        self.rows_gated
    }

    /// The design-target drop probability.
    pub fn target_p(&self) -> f64 {
        self.inner.target_p()
    }

    /// The device's realized probability (oracle).
    pub fn realized_p(&self) -> f64 {
        self.inner.realized_p()
    }

    /// Closed-loop tuning of the underlying module (see
    /// [`SpinDropModule::tune`]).
    pub fn tune(&mut self, bits_per_step: u32, tolerance: f64, rng: &mut StdRng)
        -> neuspin_device::CalibrationReport {
        self.inner.tune(bits_per_step, tolerance, rng)
    }

    /// Draws one drop decision for the whole feature map.
    pub fn sample(&mut self, rng: &mut StdRng) -> bool {
        self.inner.sample(rng)
    }

    /// Total RNG bits consumed so far.
    pub fn bits_used(&self) -> u64 {
        self.inner.bits_used()
    }

    /// The underlying device's mutable state for die checkpoints.
    pub fn rng_state(&self) -> SpinRngState {
        self.inner.rng_state()
    }

    /// Reapplies a captured device state (see [`SpinRng::restore_state`]).
    pub fn restore_rng_state(&mut self, state: &SpinRngState) {
        self.inner.restore_rng_state(state);
    }
}

/// The single per-layer scale-dropout module (SpinScaleDrop, §III-A3).
///
/// One stochastic MTJ decides per forward pass whether the layer's
/// scale vector (held in adjacent SRAM) is applied or bypassed. Because
/// the MTJ is variation-prone, the *realized* drop probability is a
/// random variable around the design target — the paper models it as a
/// Gaussian; here it arises mechanically from the lognormal device
/// variation in the corner.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleDropModule {
    inner: SpinDropModule,
    scale_len: usize,
}

impl ScaleDropModule {
    /// Builds the module for a layer whose scale vector has
    /// `scale_len` entries (each application costs that many SRAM reads).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` or `scale_len == 0`.
    pub fn new(p: f64, scale_len: usize, corner: VariedParams, rng: &mut StdRng) -> Self {
        assert!(scale_len > 0, "scale_len must be positive");
        Self { inner: SpinDropModule::new(p, corner, rng), scale_len }
    }

    /// Scale-vector length (SRAM words per application).
    pub fn scale_len(&self) -> usize {
        self.scale_len
    }

    /// The design-target drop probability.
    pub fn target_p(&self) -> f64 {
        self.inner.target_p()
    }

    /// The device's realized probability (oracle).
    pub fn realized_p(&self) -> f64 {
        self.inner.realized_p()
    }

    /// Closed-loop tuning of the underlying module (see
    /// [`SpinDropModule::tune`]).
    pub fn tune(&mut self, bits_per_step: u32, tolerance: f64, rng: &mut StdRng)
        -> neuspin_device::CalibrationReport {
        self.inner.tune(bits_per_step, tolerance, rng)
    }

    /// Draws the per-pass decision (`true` = bypass the scale vector)
    /// and tallies the SRAM traffic into `counter`.
    pub fn sample(&mut self, counter: &mut OpCounter, rng: &mut StdRng) -> bool {
        counter.rng_bits += 1;
        let dropped = self.inner.sample(rng);
        if !dropped {
            counter.sram_accesses += self.scale_len as u64;
        }
        dropped
    }

    /// Total RNG bits consumed so far.
    pub fn bits_used(&self) -> u64 {
        self.inner.bits_used()
    }

    /// The underlying device's mutable state for die checkpoints.
    pub fn rng_state(&self) -> SpinRngState {
        self.inner.rng_state()
    }

    /// Reapplies a captured device state (see [`SpinRng::restore_state`]).
    pub fn restore_rng_state(&mut self, state: &SpinRngState) {
        self.inner.restore_rng_state(state);
    }
}

/// The SpinBayes stochastic arbiter (§III-B2, Fig. 3): selects one of
/// `n` crossbars per forward pass via a random one-hot vector, using
/// `⌈log₂ n⌉` stochastic-MTJ bits (p = 0.5 each) and rejection sampling
/// when `n` is not a power of two.
#[derive(Debug, Clone, PartialEq)]
pub struct Arbiter {
    bit_sources: Vec<SpinRng>,
    n: usize,
    bits_used: u64,
}

impl Arbiter {
    /// Builds an arbiter over `n` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, corner: VariedParams, rng: &mut StdRng) -> Self {
        assert!(n > 0, "arbiter needs at least one target");
        let bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        let bit_sources = (0..bits.max(if n > 1 { 1 } else { 0 }))
            .map(|_| {
                let mut s = SpinRng::new(corner, rng);
                s.calibrate_nominal(0.5);
                s
            })
            .collect();
        Self { bit_sources, n, bits_used: 0 }
    }

    /// Number of selectable crossbars.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bits per candidate draw (`⌈log₂ n⌉`).
    pub fn bits_per_draw(&self) -> usize {
        self.bit_sources.len()
    }

    /// Draws a uniformly random index in `0..n` (one-hot selection).
    pub fn select(&mut self, rng: &mut StdRng) -> usize {
        if self.n == 1 {
            return 0;
        }
        loop {
            let mut value = 0usize;
            for src in &mut self.bit_sources {
                value = (value << 1) | usize::from(src.next_bit(rng));
                self.bits_used += 1;
            }
            if value < self.n {
                return value;
            }
            // Rejection: redraw (only possible for non-power-of-two n).
        }
    }

    /// Draws the full one-hot vector.
    pub fn select_one_hot(&mut self, rng: &mut StdRng) -> Vec<bool> {
        let idx = self.select(rng);
        (0..self.n).map(|i| i == idx).collect()
    }

    /// Total RNG bits consumed so far.
    pub fn bits_used(&self) -> u64 {
        self.bits_used
    }

    /// The arbiter's full mutable state for die checkpoints.
    pub fn state(&self) -> ArbiterState {
        ArbiterState {
            bit_sources: self.bit_sources.iter().map(|s| s.state()).collect(),
            bits_used: self.bits_used,
        }
    }

    /// Reapplies a captured state onto an arbiter built by the same
    /// deterministic constructor.
    ///
    /// # Panics
    ///
    /// Panics if the bit-source count disagrees (the checkpoint came
    /// from a differently shaped arbiter).
    pub fn restore_state(&mut self, state: &ArbiterState) {
        assert_eq!(
            state.bit_sources.len(),
            self.bit_sources.len(),
            "arbiter bit-source count mismatch"
        );
        for (src, s) in self.bit_sources.iter_mut().zip(&state.bit_sources) {
            src.restore_state(s);
        }
        self.bits_used = state.bits_used;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_device::{MtjParams, VariationModel};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(303)
    }

    #[test]
    fn spindrop_module_frequency() {
        let mut r = rng();
        let mut m = SpinDropModule::new(0.4, VariedParams::ideal(), &mut r);
        let drops = (0..5000).filter(|_| m.sample(&mut r)).count();
        assert!((drops as f64 / 5000.0 - 0.4).abs() < 0.03);
        assert_eq!(m.bits_used(), 5000);
    }

    #[test]
    fn variation_shifts_realized_p() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.10));
        let ps: Vec<f64> = (0..40)
            .map(|_| SpinDropModule::new(0.5, corner, &mut r).realized_p())
            .collect();
        let spread = ps.iter().cloned().fold(0.0f64, |a, p| a.max((p - 0.5).abs()));
        assert!(spread > 0.05, "realized p must spread under variation, got {spread}");
    }

    #[test]
    fn spatial_module_gates_multiple_rows() {
        let mut r = rng();
        let m = SpatialDropModule::new(0.3, 9, VariedParams::ideal(), &mut r);
        assert_eq!(m.rows_gated(), 9);
        assert_eq!(m.target_p(), 0.3);
    }

    #[test]
    fn scale_module_counts_sram_traffic() {
        let mut r = rng();
        let mut m = ScaleDropModule::new(0.5, 64, VariedParams::ideal(), &mut r);
        let mut counter = OpCounter::new();
        let mut kept = 0;
        for _ in 0..100 {
            if !m.sample(&mut counter, &mut r) {
                kept += 1;
            }
        }
        assert_eq!(counter.rng_bits, 100);
        assert_eq!(counter.sram_accesses, kept * 64);
        assert!(kept > 20 && kept < 80);
    }

    #[test]
    fn arbiter_uniform_selection_power_of_two() {
        let mut r = rng();
        let mut arb = Arbiter::new(4, VariedParams::ideal(), &mut r);
        assert_eq!(arb.bits_per_draw(), 2);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[arb.select(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 4000.0 - 0.25).abs() < 0.04, "{counts:?}");
        }
        assert_eq!(arb.bits_used(), 8000);
    }

    #[test]
    fn arbiter_rejection_sampling_non_power_of_two() {
        let mut r = rng();
        let mut arb = Arbiter::new(3, VariedParams::ideal(), &mut r);
        assert_eq!(arb.bits_per_draw(), 2);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[arb.select(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.05, "{counts:?}");
        }
        // Rejection costs extra bits: more than 2 per draw on average.
        assert!(arb.bits_used() > 6000);
    }

    #[test]
    fn arbiter_one_hot_has_single_true() {
        let mut r = rng();
        let mut arb = Arbiter::new(5, VariedParams::ideal(), &mut r);
        for _ in 0..20 {
            let oh = arb.select_one_hot(&mut r);
            assert_eq!(oh.len(), 5);
            assert_eq!(oh.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn arbiter_single_target_is_free() {
        let mut r = rng();
        let mut arb = Arbiter::new(1, VariedParams::ideal(), &mut r);
        assert_eq!(arb.select(&mut r), 0);
        assert_eq!(arb.bits_used(), 0);
    }

    #[test]
    fn module_state_round_trip_onto_twin_is_exact() {
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.05));
        let mut ra = StdRng::seed_from_u64(71);
        let mut rb = StdRng::seed_from_u64(71);
        let mut a = SpinDropModule::new(0.3, corner, &mut ra);
        let mut b = SpinDropModule::new(0.3, corner, &mut rb);
        let mut use_rng = StdRng::seed_from_u64(9);
        let _ = a.tune(64, 0.02, &mut use_rng);
        for _ in 0..17 {
            let _ = a.sample(&mut use_rng);
        }
        b.restore_rng_state(&a.rng_state());
        assert_eq!(a, b, "restored module must equal the source exactly");
    }

    #[test]
    fn arbiter_state_round_trip_onto_twin_is_exact() {
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.05));
        let mut ra = StdRng::seed_from_u64(72);
        let mut rb = StdRng::seed_from_u64(72);
        let mut a = Arbiter::new(3, corner, &mut ra);
        let mut b = Arbiter::new(3, corner, &mut rb);
        let mut use_rng = StdRng::seed_from_u64(10);
        for _ in 0..25 {
            let _ = a.select(&mut use_rng);
        }
        b.restore_state(&a.state());
        assert_eq!(a, b, "restored arbiter must equal the source exactly");
    }

    #[test]
    #[should_panic(expected = "bit-source count mismatch")]
    fn arbiter_restore_rejects_shape_mismatch() {
        let mut r = rng();
        let a = Arbiter::new(8, VariedParams::ideal(), &mut r);
        let mut b = Arbiter::new(2, VariedParams::ideal(), &mut r);
        b.restore_state(&a.state());
    }
}
