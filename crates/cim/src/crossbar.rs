//! Crossbar array simulators.
//!
//! A crossbar stores a weight matrix in resistive cells and computes an
//! analog matrix-vector product: inputs drive the word lines, column
//! currents sum `input · conductance`, sense amplifiers + ADCs digitise
//! the result. Two variants:
//!
//! * [`Crossbar`] — binary weights in differential
//!   [`XnorBitCell`]s (SpinDrop family),
//! * [`MlcCrossbar`] — quantized weights in multi-level cells
//!   (SpinBayes / sub-set VI).
//!
//! Device-to-device variation is frozen at *programming* time (devices
//! are physical objects); cycle-to-cycle read noise is drawn per
//! evaluation. Every operation is tallied in an [`OpCounter`] for the
//! energy model.

use crate::adc::{Adc, OpCounter};
use crate::bitcell::{MlcBitCell, XnorBitCell};
use neuspin_device::{stats, DefectMap, DefectRates, VariedParams};
use rand::rngs::StdRng;

/// Configuration shared by crossbar constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Device process corner (nominal parameters + variation).
    pub corner: VariedParams,
    /// Manufacturing defect rates.
    pub defect_rates: DefectRates,
    /// Cycle-to-cycle relative read noise on each column evaluation.
    pub read_noise: f64,
    /// Column ADC resolution in bits; `None` = ideal (no quantization).
    pub adc_bits: Option<u32>,
    /// First-order IR-drop coefficient: the wire resistance of word and
    /// bit lines attenuates contributions far from the drivers by
    /// `1 / (1 + ir_drop · (r/rows + c/cols))`. 0 disables the effect;
    /// 0.02–0.1 covers published 256×256 macro corners.
    pub ir_drop: f64,
}

impl Default for CrossbarConfig {
    /// Ideal devices, no defects, 1 % read noise, ideal readout.
    fn default() -> Self {
        Self {
            corner: VariedParams::ideal(),
            defect_rates: DefectRates::none(),
            read_noise: 0.01,
            adc_bits: None,
            ir_drop: 0.0,
        }
    }
}

impl CrossbarConfig {
    /// An ideal crossbar: no variation, defects, noise, or quantization.
    pub fn ideal() -> Self {
        Self { read_noise: 0.0, ..Self::default() }
    }
}

/// A binary-weight crossbar of differential XNOR bit-cells, `rows`
/// inputs × `cols` outputs.
///
/// # Examples
///
/// ```
/// use neuspin_cim::{Crossbar, CrossbarConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let weights = vec![1.0, -1.0, -1.0, 1.0]; // 2×2, row-major [input][output]
/// let mut xbar = Crossbar::program(&weights, 2, 2, &CrossbarConfig::ideal(), &mut rng);
/// let y = xbar.matvec(&[1.0, 1.0], &mut rng);
/// assert!((y[0] - 0.0).abs() < 1e-6);
/// assert!((y[1] - 0.0).abs() < 1e-6);
/// let y = xbar.matvec(&[1.0, -1.0], &mut rng);
/// assert!((y[0] - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<XnorBitCell>,
    /// Cached effective weights (refreshed on program/defect injection).
    eff: Vec<f64>,
    row_enabled: Vec<bool>,
    read_noise: f64,
    adc: Option<Adc>,
    counter: OpCounter,
    defects: DefectMap,
    ir_drop: f64,
}

impl Crossbar {
    /// Programs a `rows × cols` crossbar from row-major weights
    /// (`weights[i * cols + j]` = weight from input `i` to output `j`).
    /// Device instances and defects are drawn from `config`; programming
    /// costs are tallied.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or either dim is zero.
    pub fn program(
        weights: &[f32],
        rows: usize,
        cols: usize,
        config: &CrossbarConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        let defects = DefectMap::sample(rows, cols, &config.defect_rates, rng);
        let mut cells = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut cell = XnorBitCell::new(config.corner, rng);
                cell.program(weights[r * cols + c]);
                if let Some(kind) = defects.defect_at(r, c) {
                    // A defect hits one device of the pair; alternate
                    // deterministically by position parity.
                    if (r + c) % 2 == 0 {
                        cell.inject_plus_defect(kind);
                    } else {
                        cell.inject_minus_defect(kind);
                    }
                }
                cells.push(cell);
            }
        }
        let adc = config.adc_bits.map(|b| Adc::new(b, rows as f64));
        let mut xbar = Self {
            rows,
            cols,
            cells,
            eff: vec![0.0; rows * cols],
            row_enabled: vec![true; rows],
            read_noise: config.read_noise,
            adc,
            counter: OpCounter::new(),
            defects,
            ir_drop: config.ir_drop,
        };
        xbar.refresh_eff();
        // Each cell programs two devices (write + verify each).
        xbar.counter.cell_writes += (rows * cols * 2) as u64;
        xbar.counter.cell_reads += (rows * cols * 2) as u64;
        xbar
    }

    fn refresh_eff(&mut self) {
        for (i, cell) in self.cells.iter().enumerate() {
            self.eff[i] = cell.effective_weight();
        }
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The sampled defect map.
    pub fn defects(&self) -> &DefectMap {
        &self.defects
    }

    /// The op counter accumulated so far.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Resets the op counter.
    pub fn reset_counter(&mut self) {
        self.counter.reset();
    }

    /// The effective analog weight of cell `(row, col)` (±1 ideal).
    pub fn effective_weight(&self, row: usize, col: usize) -> f64 {
        self.eff[row * self.cols + col]
    }

    /// Enables/disables a word line (the hook dropout modules use).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn set_row_enabled(&mut self, row: usize, enabled: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.row_enabled[row] = enabled;
    }

    /// Re-enables every word line.
    pub fn enable_all_rows(&mut self) {
        self.row_enabled.iter_mut().for_each(|e| *e = true);
    }

    /// Number of currently enabled rows.
    pub fn enabled_rows(&self) -> usize {
        self.row_enabled.iter().filter(|&&e| e).count()
    }

    /// Analog matrix-vector product: `y_j = Σ_i x_i · w_ij` over enabled
    /// rows, with read noise and optional ADC quantization.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn matvec(&mut self, input: &[f32], rng: &mut StdRng) -> Vec<f64> {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        let active = self.enabled_rows() as u64;
        self.counter.cell_reads += active * self.cols as u64;
        self.counter.sa_evals += self.cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += self.cols as u64;
        }
        self.counter.digital_ops += self.cols as u64;
        let mut out = vec![0.0f64; self.cols];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            let mut power = 0.0f64; // Σ (x·w)² for the noise model
            for (i, &xi) in input.iter().take(self.rows).enumerate() {
                if !self.row_enabled[i] {
                    continue;
                }
                let mut term = xi as f64 * self.eff[i * self.cols + j];
                if self.ir_drop > 0.0 {
                    term /= 1.0
                        + self.ir_drop
                            * (i as f64 / self.rows as f64 + j as f64 / self.cols as f64);
                }
                acc += term;
                power += term * term;
            }
            if self.read_noise > 0.0 && power > 0.0 {
                acc += self.read_noise * power.sqrt() * stats::standard_normal(rng);
            }
            *o = match &self.adc {
                Some(adc) => adc.quantize(acc),
                None => acc,
            };
        }
        out
    }

    /// Applies an in-field drift transform to every cell's effective
    /// weight (e.g. retention loss or temperature-induced conductance
    /// shift after deployment). The transform receives and returns the
    /// effective analog weight.
    pub fn apply_drift(&mut self, mut f: impl FnMut(f64) -> f64) {
        for w in &mut self.eff {
            *w = f(*w);
        }
    }

    /// Batch version of [`matvec`](Self::matvec): input matrix
    /// `[n, rows]` flattened row-major, returns `[n, cols]` flattened.
    pub fn matmul(&mut self, inputs: &[f32], n: usize, rng: &mut StdRng) -> Vec<f64> {
        assert_eq!(inputs.len(), n * self.rows, "batch input length mismatch");
        let mut out = Vec::with_capacity(n * self.cols);
        for b in 0..n {
            out.extend(self.matvec(&inputs[b * self.rows..(b + 1) * self.rows], rng));
        }
        out
    }
}

/// A quantized-weight crossbar of multi-level cells (`k` MTJs per cell,
/// `k + 1` levels), used by SpinBayes and the sub-set VI architecture.
#[derive(Debug, Clone)]
pub struct MlcCrossbar {
    rows: usize,
    cols: usize,
    eff: Vec<f64>,
    levels: usize,
    row_enabled: Vec<bool>,
    read_noise: f64,
    adc: Option<Adc>,
    counter: OpCounter,
}

impl MlcCrossbar {
    /// Programs a quantized crossbar: each real weight is clipped to
    /// `[-w_max, +w_max]` and quantized to the cell's `k + 1` levels.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, dims are zero, `k == 0`, or
    /// `w_max <= 0`.
    pub fn program(
        weights: &[f32],
        rows: usize,
        cols: usize,
        k: usize,
        w_max: f64,
        config: &CrossbarConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        let mut eff = Vec::with_capacity(rows * cols);
        let mut counter = OpCounter::new();
        for &w in weights {
            let mut cell = MlcBitCell::new(k, w_max, config.corner, rng);
            cell.program_weight(w as f64);
            eff.push(cell.effective_weight());
            counter.cell_writes += k as u64;
            counter.cell_reads += k as u64; // verify
        }
        let adc = config.adc_bits.map(|b| Adc::new(b, rows as f64 * w_max));
        Self {
            rows,
            cols,
            eff,
            levels: k + 1,
            row_enabled: vec![true; rows],
            read_noise: config.read_noise,
            adc,
            counter,
        }
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of conductance levels per cell.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The op counter accumulated so far.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Resets the op counter.
    pub fn reset_counter(&mut self) {
        self.counter.reset();
    }

    /// The stored (quantized, variation-perturbed) weight at a cell.
    pub fn effective_weight(&self, row: usize, col: usize) -> f64 {
        self.eff[row * self.cols + col]
    }

    /// Enables/disables a word line.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn set_row_enabled(&mut self, row: usize, enabled: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.row_enabled[row] = enabled;
    }

    /// Applies an in-field drift transform to every cell's effective
    /// weight (see [`Crossbar::apply_drift`]).
    pub fn apply_drift(&mut self, mut f: impl FnMut(f64) -> f64) {
        for w in &mut self.eff {
            *w = f(*w);
        }
    }

    /// Analog matrix-vector product over enabled rows.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn matvec(&mut self, input: &[f32], rng: &mut StdRng) -> Vec<f64> {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        let active = self.row_enabled.iter().filter(|&&e| e).count() as u64;
        self.counter.cell_reads += active * self.cols as u64;
        self.counter.sa_evals += self.cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += self.cols as u64;
        }
        self.counter.digital_ops += self.cols as u64;
        let mut out = vec![0.0f64; self.cols];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            let mut power = 0.0f64;
            for (i, &xi) in input.iter().take(self.rows).enumerate() {
                if !self.row_enabled[i] {
                    continue;
                }
                let term = xi as f64 * self.eff[i * self.cols + j];
                acc += term;
                power += term * term;
            }
            if self.read_noise > 0.0 && power > 0.0 {
                acc += self.read_noise * power.sqrt() * stats::standard_normal(rng);
            }
            *o = match &self.adc {
                Some(adc) => adc.quantize(acc),
                None => acc,
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_device::{MtjParams, VariationModel};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(101)
    }

    fn ideal() -> CrossbarConfig {
        CrossbarConfig::ideal()
    }

    #[test]
    fn ideal_crossbar_computes_exact_mvm() {
        let mut r = rng();
        // 3 inputs × 2 outputs.
        let w = vec![1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let mut xbar = Crossbar::program(&w, 3, 2, &ideal(), &mut r);
        let y = xbar.matvec(&[1.0, 2.0, 3.0], &mut r);
        // y0 = 1·1 + 2·1 + 3·(−1) = 0 ; y1 = −1 + 2 − 3 = −2.
        assert!((y[0] - 0.0).abs() < 1e-9);
        assert!((y[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn read_noise_perturbs_output() {
        let mut r = rng();
        let w = vec![1.0; 64];
        let config = CrossbarConfig { read_noise: 0.05, ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 64, 1, &config, &mut r);
        let x = vec![1.0f32; 64];
        let a = xbar.matvec(&x, &mut r)[0];
        let b = xbar.matvec(&x, &mut r)[0];
        assert_ne!(a, b);
        assert!((a - 64.0).abs() < 64.0 * 0.25);
    }

    #[test]
    fn variation_shifts_weights_but_preserves_signs() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.08));
        let config = CrossbarConfig { corner, read_noise: 0.0, ..CrossbarConfig::ideal() };
        let w: Vec<f32> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xbar = Crossbar::program(&w, 10, 10, &config, &mut r);
        for row in 0..10 {
            for col in 0..10 {
                let expected = w[row * 10 + col] as f64;
                let actual = xbar.effective_weight(row, col);
                assert!(actual * expected > 0.0, "sign preserved at ({row},{col})");
                assert!((actual - expected).abs() < 0.5);
            }
        }
    }

    #[test]
    fn row_gating_removes_contribution() {
        let mut r = rng();
        let w = vec![1.0, 1.0, 1.0]; // 3×1
        let mut xbar = Crossbar::program(&w, 3, 1, &ideal(), &mut r);
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 3.0).abs() < 1e-9);
        xbar.set_row_enabled(1, false);
        assert_eq!(xbar.enabled_rows(), 2);
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 2.0).abs() < 1e-9);
        xbar.enable_all_rows();
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn adc_quantizes_output() {
        let mut r = rng();
        let w = vec![1.0; 8];
        let config = CrossbarConfig { adc_bits: Some(2), ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 8, 1, &config, &mut r);
        let y = xbar.matvec(&[0.3; 8], &mut r)[0];
        // 2-bit ADC over ±8: step 4, mid-rise codes at ±2, ±6.
        assert!([-6.0, -2.0, 2.0, 6.0].iter().any(|&v| (y - v).abs() < 1e-9), "y {y}");
    }

    #[test]
    fn counters_track_operations() {
        let mut r = rng();
        let w = vec![1.0; 12];
        let mut xbar = Crossbar::program(&w, 4, 3, &ideal(), &mut r);
        let programming = *xbar.counter();
        assert_eq!(programming.cell_writes, 24, "two devices per cell");
        xbar.reset_counter();
        let _ = xbar.matvec(&[1.0; 4], &mut r);
        assert_eq!(xbar.counter().cell_reads, 12);
        assert_eq!(xbar.counter().sa_evals, 3);
        assert_eq!(xbar.counter().adc_converts, 0, "ideal readout has no ADC");
    }

    #[test]
    fn defects_perturb_some_weights() {
        let mut r = rng();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            ..CrossbarConfig::ideal()
        };
        let w = vec![1.0; 400];
        let xbar = Crossbar::program(&w, 20, 20, &config, &mut r);
        assert!(xbar.defects().defect_count() > 0);
        let bad = (0..20)
            .flat_map(|i| (0..20).map(move |j| (i, j)))
            .filter(|&(i, j)| (xbar.effective_weight(i, j) - 1.0).abs() > 0.1)
            .count();
        assert!(bad > 0, "defects must corrupt some weights");
        assert!(bad <= xbar.defects().defect_count());
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut r = rng();
        let w = vec![1.0, -1.0, -1.0, 1.0];
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        let batch = xbar.matmul(&[1.0, 0.0, 0.0, 1.0], 2, &mut r);
        assert_eq!(batch.len(), 4);
        assert!((batch[0] - 1.0).abs() < 1e-9);
        assert!((batch[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mlc_crossbar_quantized_mvm() {
        let mut r = rng();
        // 2 levels per device pair... k=4 → 5 levels over ±1: −1, −0.5, 0, 0.5, 1.
        let w = vec![0.45, -0.9, 0.1, 1.4]; // quantizes to 0.5, −1, 0, 1
        let mut xbar = MlcCrossbar::program(&w, 2, 2, 4, 1.0, &ideal(), &mut r);
        assert_eq!(xbar.levels(), 5);
        let y = xbar.matvec(&[1.0, 1.0], &mut r);
        assert!((y[0] - 0.5).abs() < 1e-6, "0.5 + 0 = 0.5, y0 {}", y[0]);
        assert!((y[1] - 0.0).abs() < 1e-6, "−1 + 1 = 0, y1 {}", y[1]);
    }

    #[test]
    fn mlc_quantization_error_bounded_by_step() {
        let mut r = rng();
        let w: Vec<f32> = (0..50).map(|i| (i as f32 / 25.0) - 1.0).collect();
        let xbar = MlcCrossbar::program(&w, 50, 1, 8, 1.0, &ideal(), &mut r);
        let step = 2.0 / 8.0;
        for (i, &orig) in w.iter().enumerate() {
            let q = xbar.effective_weight(i, 0);
            assert!((q - orig as f64).abs() <= step / 2.0 + 1e-9, "w {orig} q {q}");
        }
    }

    #[test]
    fn ir_drop_attenuates_far_cells() {
        let mut r = rng();
        let w = vec![1.0; 128]; // 128×1
        let clean = CrossbarConfig::ideal();
        let droopy = CrossbarConfig { ir_drop: 0.1, ..CrossbarConfig::ideal() };
        let mut a = Crossbar::program(&w, 128, 1, &clean, &mut r);
        let mut b = Crossbar::program(&w, 128, 1, &droopy, &mut r);
        let x = vec![1.0f32; 128];
        let ya = a.matvec(&x, &mut r)[0];
        let yb = b.matvec(&x, &mut r)[0];
        assert!(yb < ya, "IR drop must lose signal: {yb} vs {ya}");
        assert!(yb > 0.9 * ya, "first-order model stays mild: {yb} vs {ya}");
    }

    #[test]
    fn ir_drop_hits_far_rows_harder() {
        let mut r = rng();
        let w = vec![1.0; 100]; // 100×1
        let config = CrossbarConfig { ir_drop: 0.2, ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 100, 1, &config, &mut r);
        let mut near = vec![0.0f32; 100];
        near[0] = 1.0;
        let mut far = vec![0.0f32; 100];
        far[99] = 1.0;
        let y_near = xbar.matvec(&near, &mut r)[0];
        let y_far = xbar.matvec(&far, &mut r)[0];
        assert!(y_near > y_far, "{y_near} vs {y_far}");
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn program_rejects_bad_shape() {
        let mut r = rng();
        let _ = Crossbar::program(&[1.0; 5], 2, 3, &ideal(), &mut r);
    }
}
