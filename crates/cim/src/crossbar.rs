//! Crossbar array simulators.
//!
//! A crossbar stores a weight matrix in resistive cells and computes an
//! analog matrix-vector product: inputs drive the word lines, column
//! currents sum `input · conductance`, sense amplifiers + ADCs digitise
//! the result. Two variants:
//!
//! * [`Crossbar`] — binary weights in differential
//!   [`XnorBitCell`]s (SpinDrop family),
//! * [`MlcCrossbar`] — quantized weights in multi-level cells
//!   (SpinBayes / sub-set VI).
//!
//! Device-to-device variation is frozen at *programming* time (devices
//! are physical objects); cycle-to-cycle read noise is drawn per
//! evaluation. Every operation is tallied in an [`OpCounter`] for the
//! energy model.

use crate::adc::{Adc, OpCounter};
use crate::bitcell::{MlcBitCell, XnorBitCell, XnorCellState};
use crate::packed::PackedPlane;
use neuspin_device::{
    stats, AgingConfig, AgingReport, AgingSnapshot, AgingState, DefectKind, DefectMap,
    DefectRates, VariedParams,
};
use rand::rngs::StdRng;

/// Which evaluation kernel a [`Crossbar`] routes `matvec`/`matmul`
/// through. See the module docs of [`crate::packed`] for the packed
/// fast path and DESIGN.md for the selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Pick automatically: the bit-packed XNOR/popcount kernel when the
    /// tile is noiseless (no read noise, no IR drop), its weights are
    /// ternary, and the call's inputs are ternary — the scalar
    /// row-major kernel otherwise. All choices are bit-identical, so
    /// this is purely a speed decision.
    #[default]
    Auto,
    /// Always the scalar row-major kernel (the PR-5 cache-friendly
    /// rewrite) — the packed path's bit-identity counterpart.
    Scalar,
    /// Always the retained seed kernel ([`Crossbar::matvec_reference`])
    /// — the golden oracle for equivalence tests and baselines.
    Reference,
}

/// Diagnostic state of a crossbar's packed plane (see
/// [`Crossbar::packed_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedState {
    /// The plane is out of date (weights changed since the last build,
    /// or no eligible evaluation has happened yet); the next eligible
    /// `matvec` rebuilds it.
    Stale,
    /// The plane is built and serving evaluations.
    Ready,
    /// The tile cannot be packed (too many non-ternary weights —
    /// variation corners, drifted or heavily shorted arrays); the
    /// scalar kernel serves until the weights change again.
    Unsupported,
}

/// Lazily maintained packed plane attached to a [`Crossbar`].
#[derive(Debug, Clone)]
enum PackedSlot {
    Stale,
    Ready(Box<PackedPlane>),
    Unsupported,
}

/// A spare bit-cell column held in reserve for redundancy repair.
///
/// Spares are fabricated alongside the main array (same process corner,
/// same defect statistics) and sit disconnected until
/// [`Crossbar::substitute_column`] fuses one in place of a defective
/// main column.
#[derive(Debug, Clone)]
struct SpareColumn {
    cells: Vec<XnorBitCell>,
    used: bool,
}

/// Temporal-degradation state attached to a crossbar by
/// [`Crossbar::enable_aging`].
#[derive(Debug, Clone)]
struct AgingHook {
    state: AgingState,
    /// The logical sign pattern captured at enable time — the reference
    /// contents a [`Crossbar::scrub`] restores.
    golden: Vec<f32>,
    /// Op-counter snapshots from the last [`Crossbar::advance_time`],
    /// so per-read disturb and write wear ride the existing tallies.
    seen_reads: u64,
    seen_writes: u64,
}

/// Mutable state of one spare column inside a [`CrossbarState`].
///
/// Spare cells must be captured per device: a used spare's original
/// cells were physically swapped into the main array by
/// [`Crossbar::substitute_column`], so no constructor replay can
/// recover the placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpareColumnState {
    /// Per-cell device state, top row first.
    pub cells: Vec<XnorCellState>,
    /// Whether the spare was already fused into the array.
    pub used: bool,
}

/// Mutable state of an attached aging engine inside a
/// [`CrossbarState`].
#[derive(Debug, Clone, PartialEq)]
pub struct AgingHookState {
    /// Virtual clock, event-RNG stream position, and per-cell temporal
    /// state.
    pub aging: AgingSnapshot,
    /// The golden sign image a scrub restores.
    pub golden: Vec<f32>,
    /// Op-counter snapshots from the last [`Crossbar::advance_time`].
    pub seen_reads: u64,
    pub seen_writes: u64,
}

/// The complete *mutable* state of a [`Crossbar`] — everything that can
/// diverge from a freshly fabricated twin over the die's lifetime.
///
/// Captured by [`Crossbar::export_state`] and reapplied by
/// [`Crossbar::import_state`] onto a crossbar built by the *same
/// deterministic constructor* (same weights, geometry, config, and
/// seed). Immutable structure — geometry, device corner, read noise,
/// ADC, IR-drop table, kernel policy — is *not* captured: the twin
/// already has it, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarState {
    /// Per-cell device state in row-major physical order.
    pub cells: Vec<XnorCellState>,
    /// Effective weights, verbatim (drift already folded in).
    pub eff: Vec<f64>,
    /// Word-line gates (logical coordinates).
    pub row_enabled: Vec<bool>,
    /// Accumulated op tallies.
    pub counter: OpCounter,
    /// Ground-truth defect population as `(row, col, kind)` triples in
    /// row-major order.
    pub defects: Vec<(usize, usize, DefectKind)>,
    /// Spare-column bank, per fabricated spare.
    pub spares: Vec<SpareColumnState>,
    /// Remap indirection (`None` = identity).
    pub row_src: Option<Vec<usize>>,
    pub col_src: Option<Vec<usize>>,
    /// Running sense-margin window.
    pub margin_sum: f64,
    pub margin_count: u64,
    /// Packed-kernel engagement diagnostic.
    pub packed_calls: u64,
    /// Temporal-degradation state, if aging was enabled.
    pub aging: Option<AgingHookState>,
}

/// The complete mutable state of an [`MlcCrossbar`] (see
/// [`CrossbarState`]; the MLC array keeps only effective weights, so
/// its state is far smaller).
#[derive(Debug, Clone, PartialEq)]
pub struct MlcCrossbarState {
    /// Effective (quantized, variation-perturbed) weights, verbatim.
    pub eff: Vec<f64>,
    /// Word-line gates.
    pub row_enabled: Vec<bool>,
    /// Accumulated op tallies.
    pub counter: OpCounter,
    /// Running sense-margin window.
    pub margin_sum: f64,
    pub margin_count: u64,
}

/// Configuration shared by crossbar constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Device process corner (nominal parameters + variation).
    pub corner: VariedParams,
    /// Manufacturing defect rates.
    pub defect_rates: DefectRates,
    /// Cycle-to-cycle relative read noise on each column evaluation.
    pub read_noise: f64,
    /// Column ADC resolution in bits; `None` = ideal (no quantization).
    pub adc_bits: Option<u32>,
    /// First-order IR-drop coefficient: the wire resistance of word and
    /// bit lines attenuates contributions far from the drivers by
    /// `1 / (1 + ir_drop · (r/rows + c/cols))`. 0 disables the effect;
    /// 0.02–0.1 covers published 256×256 macro corners.
    pub ir_drop: f64,
}

impl Default for CrossbarConfig {
    /// Ideal devices, no defects, 1 % read noise, ideal readout.
    fn default() -> Self {
        Self {
            corner: VariedParams::ideal(),
            defect_rates: DefectRates::none(),
            read_noise: 0.01,
            adc_bits: None,
            ir_drop: 0.0,
        }
    }
}

impl CrossbarConfig {
    /// An ideal crossbar: no variation, defects, noise, or quantization.
    pub fn ideal() -> Self {
        Self { read_noise: 0.0, ..Self::default() }
    }
}

/// A binary-weight crossbar of differential XNOR bit-cells, `rows`
/// inputs × `cols` outputs.
///
/// # Examples
///
/// ```
/// use neuspin_cim::{Crossbar, CrossbarConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let weights = vec![1.0, -1.0, -1.0, 1.0]; // 2×2, row-major [input][output]
/// let mut xbar = Crossbar::program(&weights, 2, 2, &CrossbarConfig::ideal(), &mut rng);
/// let y = xbar.matvec(&[1.0, 1.0], &mut rng);
/// assert!((y[0] - 0.0).abs() < 1e-6);
/// assert!((y[1] - 0.0).abs() < 1e-6);
/// let y = xbar.matvec(&[1.0, -1.0], &mut rng);
/// assert!((y[0] - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<XnorBitCell>,
    /// Cached effective weights (refreshed on program/defect injection).
    eff: Vec<f64>,
    row_enabled: Vec<bool>,
    /// Cached count of `true` entries in `row_enabled` (kept in sync by
    /// [`Crossbar::set_row_enabled`] and friends so the hot kernel never
    /// rescans the word lines).
    enabled_count: usize,
    read_noise: f64,
    adc: Option<Adc>,
    counter: OpCounter,
    defects: DefectMap,
    ir_drop: f64,
    /// Precomputed per-cell IR-drop denominators
    /// `1 + ir_drop · (r/rows + c/cols)` in row-major physical order;
    /// empty when `ir_drop == 0`. Positions are physical, so the table
    /// survives remaps unchanged; it exists to build [`Crossbar::wd`].
    ir_denom: Vec<f64>,
    /// Effective weights with the IR-drop denominator folded in:
    /// `wd[i] = eff[i] / ir_denom[i]` (a plain copy of `eff` when IR
    /// drop is disabled, so noiseless configs keep their historical
    /// bits). The evaluation kernels read this table instead of
    /// dividing per MAC — the division happens once per device-state
    /// mutation instead of rows×cols times per evaluation, which
    /// removes the divider-throughput bottleneck from the MC hot path.
    /// Every kernel folds the same way, so cross-kernel bit-identity is
    /// preserved. Refreshed by [`Crossbar::refresh_wd`] under the same
    /// discipline as [`Crossbar::invalidate_packed`].
    wd: Vec<f64>,
    /// Redundant columns fabricated next to the main array.
    spares: Vec<SpareColumn>,
    /// Remap indirection (logical line of each physical line); `None`
    /// means identity. See [`Crossbar::apply_remap`].
    row_src: Option<Vec<usize>>,
    col_src: Option<Vec<usize>>,
    /// Running sense-margin statistics (|analog column value| at the
    /// sense-amplifier input), for the health monitor.
    margin_sum: f64,
    margin_count: u64,
    /// Column accumulator scratch (`[acc | power]`), reused across
    /// evaluations to keep the kernel allocation-free.
    scratch: Vec<f64>,
    /// Resolved `(physical, logical)` enabled-row pairs, reused by the
    /// batch kernel so steady-state `matmul` calls allocate nothing.
    row_scratch: Vec<(usize, usize)>,
    /// Kernel routing policy (see [`KernelPolicy`]); `Auto` by default.
    policy: KernelPolicy,
    /// Lazily (re)built bit-packed weight plane for the XNOR/popcount
    /// fast path; invalidated at every effective-weight mutation site.
    packed: PackedSlot,
    /// Number of evaluations served by the packed kernel (diagnostic;
    /// lets tests and benches assert the fast path actually engaged).
    packed_calls: u64,
    /// Temporal degradation state; `None` until
    /// [`Crossbar::enable_aging`] attaches it, so arrays that never age
    /// keep the historical RNG streams and behaviour bit for bit.
    aging: Option<Box<AgingHook>>,
}

/// The per-cell IR-drop denominator table (empty when the effect is
/// disabled). Entries are computed with the exact expression the seed
/// kernel used inline, so lookups reproduce its bits.
fn ir_denom_table(rows: usize, cols: usize, ir_drop: f64) -> Vec<f64> {
    if ir_drop <= 0.0 {
        return Vec::new();
    }
    let mut table = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let row_term = r as f64 / rows as f64;
        for c in 0..cols {
            table.push(1.0 + ir_drop * (row_term + c as f64 / cols as f64));
        }
    }
    table
}

impl Crossbar {
    /// Programs a `rows × cols` crossbar from row-major weights
    /// (`weights[i * cols + j]` = weight from input `i` to output `j`).
    /// Device instances and defects are drawn from `config`; programming
    /// costs are tallied.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or either dim is zero.
    pub fn program(
        weights: &[f32],
        rows: usize,
        cols: usize,
        config: &CrossbarConfig,
        rng: &mut StdRng,
    ) -> Self {
        Self::program_with_spares(weights, rows, cols, 0, config, rng)
    }

    /// Like [`Crossbar::program`], but also fabricates `spares`
    /// redundant columns next to the array. Spares come from the same
    /// process corner and defect statistics as the main array (a spare
    /// can itself be born defective) and stay disconnected until
    /// [`Crossbar::substitute_column`] fuses one in.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or either dim is zero.
    pub fn program_with_spares(
        weights: &[f32],
        rows: usize,
        cols: usize,
        spares: usize,
        config: &CrossbarConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        // One defect draw over the whole fabricated stripe (main array
        // plus spares); with `spares == 0` the RNG stream is identical
        // to the historical `program` path.
        let physical = cols + spares;
        let fab_defects = DefectMap::sample(rows, physical, &config.defect_rates, rng);
        let mut cells = Vec::with_capacity(rows * cols);
        let mut spare_cols: Vec<SpareColumn> =
            (0..spares).map(|_| SpareColumn { cells: Vec::with_capacity(rows), used: false }).collect();
        let mut defects = DefectMap::empty(rows, cols);
        for r in 0..rows {
            for c in 0..physical {
                let mut cell = XnorBitCell::new(config.corner, rng);
                if c < cols {
                    cell.program(weights[r * cols + c]);
                }
                if let Some(kind) = fab_defects.defect_at(r, c) {
                    // A defect hits one device of the pair; alternate
                    // deterministically by position parity.
                    if (r + c) % 2 == 0 {
                        cell.inject_plus_defect(kind);
                    } else {
                        cell.inject_minus_defect(kind);
                    }
                }
                if c < cols {
                    if let Some(kind) = fab_defects.defect_at(r, c) {
                        defects.inject(r, c, kind);
                    }
                    cells.push(cell);
                } else {
                    spare_cols[c - cols].cells.push(cell);
                }
            }
        }
        let adc = config.adc_bits.map(|b| Adc::new(b, rows as f64));
        let mut xbar = Self {
            rows,
            cols,
            cells,
            eff: vec![0.0; rows * cols],
            row_enabled: vec![true; rows],
            enabled_count: rows,
            read_noise: config.read_noise,
            adc,
            counter: OpCounter::new(),
            defects,
            ir_drop: config.ir_drop,
            ir_denom: ir_denom_table(rows, cols, config.ir_drop),
            wd: vec![0.0; rows * cols],
            spares: spare_cols,
            row_src: None,
            col_src: None,
            margin_sum: 0.0,
            margin_count: 0,
            scratch: Vec::new(),
            row_scratch: Vec::new(),
            policy: KernelPolicy::Auto,
            packed: PackedSlot::Stale,
            packed_calls: 0,
            aging: None,
        };
        xbar.refresh_eff();
        // Each cell programs two devices (write + verify each).
        xbar.counter.cell_writes += (rows * cols * 2) as u64;
        xbar.counter.cell_reads += (rows * cols * 2) as u64;
        xbar
    }

    fn refresh_eff(&mut self) {
        for (i, cell) in self.cells.iter().enumerate() {
            self.eff[i] = cell.effective_weight();
        }
        // Aged conductances carry their cumulative drift factor (reset
        // to 1 by a scrub, so a refreshed array reads as programmed).
        if let Some(hook) = &self.aging {
            for (i, w) in self.eff.iter_mut().enumerate() {
                *w *= hook.state.drift(i);
            }
        }
        self.refresh_wd();
        self.invalidate_packed();
    }

    /// Rebuilds the folded weight table [`Crossbar::wd`]. Must
    /// accompany every mutation of `eff` — the same discipline (and the
    /// same three sites) as [`Crossbar::invalidate_packed`].
    fn refresh_wd(&mut self) {
        if self.ir_denom.is_empty() {
            self.wd.copy_from_slice(&self.eff);
        } else {
            for ((w, &e), &d) in self.wd.iter_mut().zip(&self.eff).zip(&self.ir_denom) {
                *w = e / d;
            }
        }
    }

    /// Marks the packed plane stale. Must be called by every site that
    /// mutates `eff` — [`Crossbar::refresh_eff`] (programming, scrub,
    /// remap, aging), [`Crossbar::substitute_column`], and
    /// [`Crossbar::apply_drift`] — so the next eligible evaluation
    /// rebuilds the plane from the current weights.
    fn invalidate_packed(&mut self) {
        self.packed = PackedSlot::Stale;
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The ground-truth defect map of the *connected* array (physical
    /// coordinates). Updated by [`Crossbar::substitute_column`]; a
    /// production-test flow must not read it — run the BIST instead.
    pub fn defects(&self) -> &DefectMap {
        &self.defects
    }

    /// Number of spare columns fabricated (used or not).
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// Number of spare columns still available for repair.
    pub fn available_spares(&self) -> usize {
        self.spares.iter().filter(|s| !s.used).count()
    }

    /// Whether spare `k` is unused *and* free of fabrication defects.
    /// Spares are exhaustively screened at production test (they are
    /// few), so the repair controller knows their state exactly.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn spare_is_clean(&self, k: usize) -> bool {
        let s = &self.spares[k];
        !s.used && s.cells.iter().all(|c| !c.is_defective())
    }

    /// Fuses spare column `k` in place of main column `col`: the spare's
    /// cells take over the physical column, are programmed with the
    /// column's current stored signs (write + verify tallied), and the
    /// ground-truth defect map is updated — the old column's defects
    /// disappear, the spare's own defects (if any) appear.
    ///
    /// # Panics
    ///
    /// Panics if `col` or `k` is out of range, or spare `k` was already
    /// used.
    pub fn substitute_column(&mut self, col: usize, k: usize) {
        assert!(col < self.cols, "column {col} out of range {}", self.cols);
        assert!(k < self.spares.len(), "spare {k} out of range {}", self.spares.len());
        assert!(!self.spares[k].used, "spare {k} already used");
        self.spares[k].used = true;
        self.defects.clear_column(col);
        for r in 0..self.rows {
            let idx = r * self.cols + col;
            let sign = self.cells[idx].stored_sign();
            let retired = self.cells[idx].clone();
            let mut cell = std::mem::replace(&mut self.spares[k].cells[r], retired);
            cell.program(sign);
            if let Some(kind) = cell.defect() {
                self.defects.inject(r, col, kind);
            }
            self.cells[idx] = cell;
            self.eff[idx] = self.cells[idx].effective_weight();
        }
        self.refresh_wd();
        self.invalidate_packed();
        self.counter.cell_writes += (self.rows * 2) as u64;
        self.counter.cell_reads += (self.rows * 2) as u64;
        // The fused-in spare is a fresh physical device: its temporal
        // state (drift, wear, endurance budget) restarts.
        if let Some(hook) = &mut self.aging {
            for r in 0..self.rows {
                hook.state.replace_cell(r * self.cols + col);
            }
        }
    }

    /// The stored sign pattern in *logical* coordinates (undoing any
    /// remap), row-major — what [`Crossbar::reprogram`] would need to
    /// reproduce the current contents.
    pub fn stored_logical_signs(&self) -> Vec<f32> {
        let mut signs = vec![0.0f32; self.rows * self.cols];
        for p in 0..self.rows {
            let lr = self.row_src.as_ref().map_or(p, |m| m[p]);
            for pc in 0..self.cols {
                let lc = self.col_src.as_ref().map_or(pc, |m| m[pc]);
                signs[lr * self.cols + lc] = self.cells[p * self.cols + pc].stored_sign();
            }
        }
        signs
    }

    /// Rewrites every cell's stored sign from row-major *logical*
    /// weights (routed through any active remap). Devices and defects
    /// are physical and persist — only the stored state changes. Write
    /// and verify costs are tallied.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols`.
    pub fn reprogram(&mut self, weights: &[f32]) {
        assert_eq!(weights.len(), self.rows * self.cols, "weight count mismatch");
        for p in 0..self.rows {
            let lr = self.row_src.as_ref().map_or(p, |m| m[p]);
            for pc in 0..self.cols {
                let lc = self.col_src.as_ref().map_or(pc, |m| m[pc]);
                self.cells[p * self.cols + pc].program(weights[lr * self.cols + lc]);
            }
        }
        self.refresh_eff();
        self.counter.cell_writes += (self.rows * self.cols * 2) as u64;
        self.counter.cell_reads += (self.rows * self.cols * 2) as u64;
    }

    /// Writes a test pattern in *physical* coordinates (used by the
    /// march-test BIST, which probes the fabricated array directly).
    /// Write and verify costs are tallied.
    pub fn program_pattern(&mut self, pattern: impl Fn(usize, usize) -> f32) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.cells[r * self.cols + c].program(pattern(r, c));
            }
        }
        self.refresh_eff();
        self.counter.cell_writes += (self.rows * self.cols * 2) as u64;
        self.counter.cell_reads += (self.rows * self.cols * 2) as u64;
    }

    /// Raw single-row read through the sense-amplifier path, in
    /// *physical* coordinates: returns each column's analog value with
    /// the word line of `row` driven at unit input and every other row
    /// off. Read noise applies; the ADC is bypassed (production test
    /// reads margins, not codes). Read costs are tallied.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read_row(&mut self, row: usize, rng: &mut StdRng) -> Vec<f64> {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.counter.cell_reads += self.cols as u64;
        self.counter.sa_evals += self.cols as u64;
        let mut out = vec![0.0f64; self.cols];
        for (j, o) in out.iter_mut().enumerate() {
            // `wd` is exactly `eff / ir_denom`, the value this read
            // historically computed inline.
            let mut term = self.wd[row * self.cols + j];
            if self.read_noise > 0.0 && term != 0.0 {
                term += self.read_noise * term.abs() * stats::ziggurat_normal(rng);
            }
            *o = term;
        }
        out
    }

    /// Installs a line remap: `row_src[p]` / `col_src[p]` name the
    /// *logical* row/column carried by physical line `p`. The current
    /// logical contents are re-programmed into their new physical homes
    /// (defective devices stay put — that is the point: the permutation
    /// chooses which logical lines land on them). [`Crossbar::matvec`]
    /// keeps its logical interface: inputs and outputs are routed
    /// through the maps by the (digital) periphery.
    ///
    /// # Panics
    ///
    /// Panics if either map is not a permutation of its index range.
    pub fn apply_remap(&mut self, row_src: Vec<usize>, col_src: Vec<usize>) {
        assert_permutation(&row_src, self.rows, "row_src");
        assert_permutation(&col_src, self.cols, "col_src");
        let logical = self.stored_logical_signs();
        let identity_rows = row_src.iter().enumerate().all(|(i, &v)| i == v);
        let identity_cols = col_src.iter().enumerate().all(|(i, &v)| i == v);
        self.row_src = if identity_rows { None } else { Some(row_src) };
        self.col_src = if identity_cols { None } else { Some(col_src) };
        self.reprogram(&logical);
        // Gating is logical, so the remap cannot change which rows are
        // enabled — revalidate the cached count anyway (cheap, and keeps
        // the invariant local to every mutation site).
        self.enabled_count = self.row_enabled.iter().filter(|&&e| e).count();
    }

    /// The active remap as `(row_src, col_src)` (identity if none was
    /// applied).
    pub fn remap(&self) -> (Vec<usize>, Vec<usize>) {
        let rows = self
            .row_src
            .clone()
            .unwrap_or_else(|| (0..self.rows).collect());
        let cols = self
            .col_src
            .clone()
            .unwrap_or_else(|| (0..self.cols).collect());
        (rows, cols)
    }

    /// Mean |analog column value| at the sense-amplifier input since the
    /// last [`Crossbar::reset_sense_margin`] — the drift-sensitive
    /// signal the runtime health monitor watches. Returns 0 before any
    /// evaluation.
    pub fn mean_sense_margin(&self) -> f64 {
        if self.margin_count == 0 {
            0.0
        } else {
            self.margin_sum / self.margin_count as f64
        }
    }

    /// Starts a fresh sense-margin window.
    pub fn reset_sense_margin(&mut self) {
        self.margin_sum = 0.0;
        self.margin_count = 0;
    }

    /// The op counter accumulated so far.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Resets the op counter.
    pub fn reset_counter(&mut self) {
        self.counter.reset();
    }

    /// The effective analog weight of cell `(row, col)` (±1 ideal).
    pub fn effective_weight(&self, row: usize, col: usize) -> f64 {
        self.eff[row * self.cols + col]
    }

    /// Enables/disables a word line (the hook dropout modules use).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn set_row_enabled(&mut self, row: usize, enabled: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        if self.row_enabled[row] != enabled {
            if enabled {
                self.enabled_count += 1;
            } else {
                self.enabled_count -= 1;
            }
            self.row_enabled[row] = enabled;
        }
    }

    /// Re-enables every word line.
    pub fn enable_all_rows(&mut self) {
        self.row_enabled.iter_mut().for_each(|e| *e = true);
        self.enabled_count = self.rows;
    }

    /// Number of currently enabled rows (cached — O(1)).
    pub fn enabled_rows(&self) -> usize {
        self.enabled_count
    }

    /// Analog matrix-vector product: `y_j = Σ_i x_i · w_ij` over enabled
    /// rows, with read noise and optional ADC quantization. Inputs and
    /// outputs stay in *logical* coordinates: any active remap (see
    /// [`Crossbar::apply_remap`]) is resolved by the digital periphery,
    /// while IR drop acts on the *physical* line positions — which is
    /// exactly what fault-aware remapping exploits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn matvec(&mut self, input: &[f32], rng: &mut StdRng) -> Vec<f64> {
        let mut out = vec![0.0f64; self.cols];
        self.matvec_into(input, &mut out, rng);
        out
    }

    /// [`Crossbar::matvec`] writing into a caller-provided buffer —
    /// the zero-allocation entry point of the forward-plan execution
    /// layer (and the batch path's per-row primitive). Dispatches on
    /// the [`KernelPolicy`]; under `Auto` the packed XNOR/popcount
    /// kernel serves noiseless ternary evaluations and the scalar
    /// row-major kernel everything else — bit-identically either way.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != cols`.
    pub fn matvec_into(&mut self, input: &[f32], out: &mut [f64], rng: &mut StdRng) {
        match self.policy {
            KernelPolicy::Reference => self.matvec_reference_into(input, out, rng),
            KernelPolicy::Scalar => self.matvec_scalar_into(input, out, rng),
            KernelPolicy::Auto => {
                if !(self.packed_ready() && self.matvec_packed_into(input, out)) {
                    self.matvec_scalar_into(input, out, rng);
                }
            }
        }
    }

    /// Whether the packed plane is usable, lazily rebuilding it when the
    /// weights changed. Tiles with read noise or IR drop are never
    /// eligible (those effects need the scalar per-cell walk), and tiles
    /// whose weights are substantially non-ternary cache as unsupported
    /// until the next weight mutation.
    fn packed_ready(&mut self) -> bool {
        if self.read_noise > 0.0 || self.ir_drop > 0.0 {
            return false;
        }
        if matches!(self.packed, PackedSlot::Stale) {
            self.packed = match PackedPlane::build(&self.eff, self.rows, self.cols) {
                Some(plane) => PackedSlot::Ready(Box::new(plane)),
                None => PackedSlot::Unsupported,
            };
        }
        matches!(self.packed, PackedSlot::Ready(_))
    }

    /// Attempts the bit-packed XNOR/popcount kernel. Returns `false`
    /// without any side effect (no tallies, no margin, no output) when
    /// the call's inputs are not ternary — the caller then falls back
    /// to the scalar kernel. Only called with a `Ready` plane.
    fn matvec_packed_into(&mut self, input: &[f32], out: &mut [f64]) -> bool {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        // Move the plane out so the borrow checker lets the kernel read
        // `self` freely; restored before returning.
        let PackedSlot::Ready(mut plane) = std::mem::replace(&mut self.packed, PackedSlot::Stale)
        else {
            unreachable!("matvec_packed_into requires a ready plane")
        };
        let served = self.matvec_packed_with(&mut plane, input, out);
        self.packed = PackedSlot::Ready(plane);
        served
    }

    /// The packed kernel body: pack the input through remap + gating,
    /// popcount the packable columns, walk the few non-ternary columns
    /// in reference row order, then finalize every column in ascending
    /// physical order exactly like the scalar kernels (margin tally,
    /// ADC). No RNG is touched: the packed path only runs on noiseless
    /// tiles, where the scalar kernels draw nothing either — downstream
    /// RNG streams stay aligned across kernel choices.
    fn matvec_packed_with(
        &mut self,
        plane: &mut PackedPlane,
        input: &[f32],
        out: &mut [f64],
    ) -> bool {
        if !plane.pack_input(input, self.row_src.as_deref(), &self.row_enabled) {
            return false;
        }
        let cols = self.cols;
        self.counter.cell_reads += self.enabled_count as u64 * cols as u64;
        self.counter.sa_evals += cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += cols as u64;
        }
        self.counter.digital_ops += cols as u64;
        self.packed_calls += 1;
        self.scratch.clear();
        self.scratch.resize(cols, 0.0);
        let row_src = self.row_src.as_deref();
        for pj in 0..cols {
            self.scratch[pj] = if plane.col_is_packed(pj) {
                // Exact integer accumulation: order-independent, so the
                // whole-word popcount matches the scalar kernels'
                // ascending-row float sum bit for bit.
                plane.column_sum(pj)
            } else {
                // Non-ternary column (short/open defect): replicate the
                // reference kernel's ascending-row walk exactly.
                let mut acc = 0.0f64;
                for p in 0..self.rows {
                    let l = row_src.map_or(p, |m| m[p]);
                    if !self.row_enabled[l] {
                        continue;
                    }
                    acc += input[l] as f64 * self.wd[p * cols + pj];
                }
                acc
            };
        }
        let col_src = self.col_src.as_deref();
        for pj in 0..cols {
            let a = self.scratch[pj];
            self.margin_sum += a.abs();
            self.margin_count += 1;
            out[col_src.map_or(pj, |m| m[pj])] = match &self.adc {
                Some(adc) => {
                    if a.abs() > adc.full_scale() {
                        self.counter.adc_saturations += 1;
                    }
                    adc.quantize(a)
                }
                None => a,
            };
        }
        true
    }

    /// The scalar row-major kernel (the PR-5 cache-friendly rewrite):
    /// handles every configuration — noise, IR drop, analog weights —
    /// bit-identically to [`Crossbar::matvec_reference`].
    fn matvec_scalar_into(&mut self, input: &[f32], out: &mut [f64], rng: &mut StdRng) {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        let cols = self.cols;
        self.counter.cell_reads += self.enabled_count as u64 * cols as u64;
        self.counter.sa_evals += cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += cols as u64;
        }
        self.counter.digital_ops += cols as u64;
        // Row-outer / column-inner accumulation: each enabled physical
        // row streams its contiguous folded-weight (`wd`) slice
        // into per-column accumulators, so every column's partial sums
        // still arrive in ascending-`p` order — the same order (hence
        // the same floating-point bits) as the column-outer seed kernel.
        self.scratch.clear();
        self.scratch.resize(2 * cols, 0.0);
        let (acc, power) = self.scratch.split_at_mut(cols);
        let row_src = self.row_src.as_deref();
        for p in 0..self.rows {
            let l = row_src.map_or(p, |m| m[p]);
            if !self.row_enabled[l] {
                continue;
            }
            let x = input[l] as f64;
            let wd_row = &self.wd[p * cols..(p + 1) * cols];
            for ((a, pw), &w) in acc.iter_mut().zip(power.iter_mut()).zip(wd_row) {
                let term = x * w; // IR denominator pre-folded into `wd`
                *a += term;
                *pw += term * term; // Σ term² for the noise model
            }
        }
        // Finalize columns in physical order — noise draws, margin
        // tallies, and ADC conversions keep the seed kernel's per-column
        // sequence — scattering through any column remap straight into
        // the logical output slot.
        let col_src = self.col_src.as_deref();
        for (pj, (&a, &pw)) in acc.iter().zip(power.iter()).enumerate() {
            let mut a = a;
            if self.read_noise > 0.0 && pw > 0.0 {
                a += self.read_noise * pw.sqrt() * stats::ziggurat_normal(rng);
            }
            self.margin_sum += a.abs();
            self.margin_count += 1;
            out[col_src.map_or(pj, |m| m[pj])] = match &self.adc {
                Some(adc) => {
                    if a.abs() > adc.full_scale() {
                        self.counter.adc_saturations += 1;
                    }
                    adc.quantize(a)
                }
                None => a,
            };
        }
    }

    /// The retained seed kernel (column-outer, fresh enabled-row scan)
    /// — the bit-exact baseline the row-major [`Crossbar::matvec`] is
    /// verified against, and the "before" side of the `exp_throughput`
    /// kernel comparison. Reads the same folded weight table
    /// ([`Crossbar::wd`]) as the production kernels: folding the IR
    /// denominator is a rounding change, so the baseline folds too and
    /// the differential batteries keep their bit-exact teeth on
    /// traversal order, remap routing, noise, and ADC behaviour.
    pub fn matvec_reference(&mut self, input: &[f32], rng: &mut StdRng) -> Vec<f64> {
        let mut out = vec![0.0f64; self.cols];
        self.matvec_reference_into(input, &mut out, rng);
        out
    }

    fn matvec_reference_into(&mut self, input: &[f32], out: &mut [f64], rng: &mut StdRng) {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        let active = self.row_enabled.iter().filter(|&&e| e).count() as u64;
        self.counter.cell_reads += active * self.cols as u64;
        self.counter.sa_evals += self.cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += self.cols as u64;
        }
        self.counter.digital_ops += self.cols as u64;
        let row_src = self.row_src.as_deref();
        let col_src = self.col_src.as_deref();
        // Physical-order staging lives in the shared scratch so repeated
        // calls (the batch loop, the planned forward path) never
        // allocate; the math below is byte-for-byte the seed kernel's.
        self.scratch.clear();
        self.scratch.resize(self.cols, 0.0);
        for pj in 0..self.cols {
            let mut acc = 0.0f64;
            let mut power = 0.0f64; // Σ (x·w)² for the noise model
            for p in 0..self.rows {
                let l = row_src.map_or(p, |m| m[p]);
                if !self.row_enabled[l] {
                    continue;
                }
                let term = input[l] as f64 * self.wd[p * self.cols + pj];
                acc += term;
                power += term * term;
            }
            if self.read_noise > 0.0 && power > 0.0 {
                acc += self.read_noise * power.sqrt() * stats::ziggurat_normal(rng);
            }
            self.margin_sum += acc.abs();
            self.margin_count += 1;
            self.scratch[pj] = match &self.adc {
                Some(adc) => {
                    if acc.abs() > adc.full_scale() {
                        self.counter.adc_saturations += 1;
                    }
                    adc.quantize(acc)
                }
                None => acc,
            };
        }
        // Un-permute columns back to logical order.
        if let Some(map) = col_src {
            for (pj, &l) in map.iter().enumerate() {
                out[l] = self.scratch[pj];
            }
        } else {
            out.copy_from_slice(&self.scratch);
        }
    }

    /// Routes every evaluation through [`Crossbar::matvec_reference`]
    /// instead of the fast kernels — for equivalence tests and the
    /// throughput baseline. `false` restores automatic kernel
    /// selection. Convenience wrapper over
    /// [`Crossbar::set_kernel_policy`].
    pub fn set_reference_kernel(&mut self, on: bool) {
        self.set_kernel_policy(if on { KernelPolicy::Reference } else { KernelPolicy::Auto });
    }

    /// Sets the kernel routing policy. All policies produce
    /// bit-identical outputs, counters, margins, and RNG consumption —
    /// this is a speed/diagnostics knob, never a semantics knob.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
    }

    /// The active kernel routing policy.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Diagnostic state of the packed plane. `Stale` until the first
    /// eligible evaluation builds it (and again after every weight
    /// mutation); tiles with read noise or IR drop stay `Stale` forever
    /// (they are never eligible).
    pub fn packed_state(&self) -> PackedState {
        match self.packed {
            PackedSlot::Stale => PackedState::Stale,
            PackedSlot::Ready(_) => PackedState::Ready,
            PackedSlot::Unsupported => PackedState::Unsupported,
        }
    }

    /// Number of evaluations the packed XNOR/popcount kernel served
    /// since programming — lets tests and benches assert the fast path
    /// actually engaged (worker clones do not merge this diagnostic).
    pub fn packed_calls(&self) -> u64 {
        self.packed_calls
    }

    /// Raw sense-margin accumulator `(sum, count)` — lets the parallel
    /// inference engine snapshot and merge worker-clone statistics.
    pub fn sense_margin_parts(&self) -> (f64, u64) {
        (self.margin_sum, self.margin_count)
    }

    /// Folds externally accumulated sense-margin statistics (a worker
    /// clone's delta) into this crossbar's running window.
    pub fn merge_sense_margin(&mut self, sum: f64, count: u64) {
        self.margin_sum += sum;
        self.margin_count += count;
    }

    /// Applies an in-field drift transform to every cell's effective
    /// weight (e.g. retention loss or temperature-induced conductance
    /// shift after deployment). The transform receives and returns the
    /// effective analog weight.
    pub fn apply_drift(&mut self, mut f: impl FnMut(f64) -> f64) {
        for w in &mut self.eff {
            *w = f(*w);
        }
        self.refresh_wd();
        self.invalidate_packed();
    }

    /// Attaches a temporal-degradation engine to the array: from now on
    /// [`Crossbar::advance_time`] ages the programmed cells and
    /// [`Crossbar::scrub`] refreshes them back to the contents stored
    /// *right now* (the golden reference). Calling this again
    /// re-baselines both the golden contents and the temporal state.
    ///
    /// Arrays that never enable aging are bit-for-bit unaffected: the
    /// engine draws only from its own event-indexed streams.
    pub fn enable_aging(&mut self, config: &AgingConfig) {
        self.aging = Some(Box::new(AgingHook {
            state: AgingState::new(self.rows * self.cols, config.clone()),
            golden: self.stored_logical_signs(),
            seen_reads: self.counter.cell_reads,
            seen_writes: self.counter.cell_writes,
        }));
    }

    /// Whether an aging engine is attached.
    pub fn aging_enabled(&self) -> bool {
        self.aging.is_some()
    }

    /// The attached temporal state (e.g. the virtual clock), if any.
    pub fn aging_state(&self) -> Option<&AgingState> {
        self.aging.as_deref().map(|h| &h.state)
    }

    /// Advances the virtual clock by `dt_hours`, applying temporal
    /// degradation to the array:
    ///
    /// * retention and read-disturb flips invert the stored sign of the
    ///   affected (non-defective) cells;
    /// * endurance wear-outs convert the cell into a stuck-at defect
    ///   frozen near its current state, recorded in the ground-truth
    ///   [`Crossbar::defects`] map (the BIST can then find it);
    /// * conductance drift accumulates into the effective weights.
    ///
    /// Read-disturb exposure and write wear are derived from the op
    /// counters: the reads/writes tallied since the last call (by
    /// matvec, BIST, reprogramming, …) are averaged per cell.
    ///
    /// # Panics
    ///
    /// Panics if [`Crossbar::enable_aging`] was never called, or
    /// `dt_hours` is not positive and finite.
    pub fn advance_time(&mut self, dt_hours: f64) -> AgingReport {
        let mut hook = self.aging.take().expect("advance_time requires enable_aging");
        let cells = (self.rows * self.cols) as f64;
        let reads_per_cell =
            self.counter.cell_reads.saturating_sub(hook.seen_reads) as f64 / cells;
        // Programming tallies two device writes per cell.
        let writes_per_cell =
            self.counter.cell_writes.saturating_sub(hook.seen_writes) as f64 / (2.0 * cells);
        let step = hook.state.advance(dt_hours, reads_per_cell, writes_per_cell);
        for &i in step.retention_flips.iter().chain(&step.disturb_flips) {
            // Defective cells have no functioning free layer to flip.
            if !self.cells[i].is_defective() {
                let s = self.cells[i].stored_sign();
                self.cells[i].program(-s);
            }
        }
        for &i in &step.wear_outs {
            let (r, c) = (i / self.cols, i % self.cols);
            // A worn-out barrier freezes the cell near its current
            // state; the defect lands on one device of the pair by the
            // same position parity the fabrication path uses.
            let kind = if self.cells[i].stored_sign() >= 0.0 {
                DefectKind::StuckParallel
            } else {
                DefectKind::StuckAntiParallel
            };
            if (r + c) % 2 == 0 {
                self.cells[i].inject_plus_defect(kind);
            } else {
                self.cells[i].inject_minus_defect(kind);
            }
            self.defects.inject(r, c, kind);
        }
        hook.seen_reads = self.counter.cell_reads;
        hook.seen_writes = self.counter.cell_writes;
        let report = step.summary(dt_hours);
        self.aging = Some(hook);
        self.refresh_eff();
        report
    }

    /// Scrubs the array: rewrites the golden contents captured at
    /// [`Crossbar::enable_aging`] over every cell (routed through any
    /// active remap), clearing accumulated sign flips and conductance
    /// drift. Stuck-at conversions are *not* healed — that takes the
    /// repair/remap machinery. Each of the configured
    /// [`AgingConfig::scrub_passes`] write-verify loops is tallied like
    /// a full reprogram, which is the scrub's energy cost (and its
    /// endurance cost at the next [`Crossbar::advance_time`]).
    ///
    /// Returns the number of logical cells whose stored sign had
    /// decayed away from the golden contents.
    ///
    /// # Panics
    ///
    /// Panics if [`Crossbar::enable_aging`] was never called.
    pub fn scrub(&mut self) -> usize {
        assert!(self.aging.is_some(), "scrub requires enable_aging");
        let (golden, passes) = {
            let hook = self.aging.as_deref().unwrap();
            (hook.golden.clone(), hook.state.config().scrub_passes)
        };
        let current = self.stored_logical_signs();
        let decayed = current.iter().zip(&golden).filter(|(a, b)| a != b).count();
        self.aging.as_deref_mut().unwrap().state.reset_drift();
        for _ in 0..passes {
            self.reprogram(&golden);
        }
        decayed
    }

    /// Batch version of [`matvec`](Self::matvec): input matrix
    /// `[n, rows]` flattened row-major, returns `[n, cols]` flattened.
    ///
    /// Dispatches on the same [`KernelPolicy`] as the per-call path, so
    /// the batch is always bit-identical to `n` sequential `matvec`
    /// calls — output, counters, margins, and RNG stream alike:
    ///
    /// * `Reference` loops the seed kernel per batch element (what a
    ///   sequence of `matvec` calls does under that policy);
    /// * `Auto` on an eligible packed tile dispatches per element —
    ///   packed for ternary inputs, scalar for the rest — exactly
    ///   mirroring the per-call selection;
    /// * otherwise the scalar row-major kernel runs with the per-call
    ///   bookkeeping hoisted out of the batch loop (row indirection
    ///   resolved once, scratch sized once, op counts tallied in bulk).
    pub fn matmul(&mut self, inputs: &[f32], n: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut out = vec![0.0f64; n * self.cols];
        self.matmul_into(inputs, n, &mut out, rng);
        out
    }

    /// [`Crossbar::matmul`] writing into a caller-provided buffer: the
    /// forward-plan path's batch primitive. Every output element is
    /// overwritten (no pre-zeroing needed) and steady-state calls
    /// perform zero heap allocations; dispatch, float-op order, tallies
    /// and RNG consumption are identical to `matmul`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * cols`.
    pub fn matmul_into(&mut self, inputs: &[f32], n: usize, out: &mut [f64], rng: &mut StdRng) {
        assert_eq!(inputs.len(), n * self.rows, "batch input length mismatch");
        assert_eq!(out.len(), n * self.cols, "batch output length mismatch");
        let policy = self.policy;
        match policy {
            KernelPolicy::Reference => {
                for (input, chunk) in
                    inputs.chunks_exact(self.rows).zip(out.chunks_exact_mut(self.cols))
                {
                    self.matvec_reference_into(input, chunk, rng);
                }
            }
            KernelPolicy::Auto if self.packed_ready() => {
                for (input, chunk) in
                    inputs.chunks_exact(self.rows).zip(out.chunks_exact_mut(self.cols))
                {
                    if !self.matvec_packed_into(input, chunk) {
                        self.matvec_scalar_into(input, chunk, rng);
                    }
                }
            }
            _ => self.matmul_scalar_into(inputs, n, out, rng),
        }
    }

    /// The hoisted scalar batch kernel (see [`Crossbar::matmul`]).
    fn matmul_scalar_into(&mut self, inputs: &[f32], n: usize, out: &mut [f64], rng: &mut StdRng) {
        let cols = self.cols;
        // The gate pattern and remap are fixed across the batch:
        // resolve each enabled physical row to its logical input index
        // once (ascending physical order, as the per-call kernel walks)
        // into the reusable row scratch — taken out of `self` for the
        // duration so the borrow checker allows field access alongside.
        let mut active = std::mem::take(&mut self.row_scratch);
        active.clear();
        {
            let row_src = self.row_src.as_deref();
            active.extend((0..self.rows).filter_map(|p| {
                let l = row_src.map_or(p, |m| m[p]);
                self.row_enabled[l].then_some((p, l))
            }));
        }
        self.counter.cell_reads += (n * self.enabled_count * cols) as u64;
        self.counter.sa_evals += (n * cols) as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += (n * cols) as u64;
        }
        self.counter.digital_ops += (n * cols) as u64;
        self.scratch.clear();
        self.scratch.resize(2 * cols, 0.0);
        let col_src = self.col_src.as_deref();
        for (input, chunk) in
            inputs.chunks_exact(self.rows).zip(out.chunks_exact_mut(cols))
        {
            let (acc, power) = self.scratch.split_at_mut(cols);
            acc.fill(0.0);
            power.fill(0.0);
            for &(p, l) in &active {
                let x = input[l] as f64;
                let wd_row = &self.wd[p * cols..(p + 1) * cols];
                for ((a, pw), &w) in acc.iter_mut().zip(power.iter_mut()).zip(wd_row) {
                    let term = x * w; // IR denominator pre-folded into `wd`
                    *a += term;
                    *pw += term * term;
                }
            }
            for (pj, (&a, &pw)) in acc.iter().zip(power.iter()).enumerate() {
                let mut a = a;
                if self.read_noise > 0.0 && pw > 0.0 {
                    a += self.read_noise * pw.sqrt() * stats::ziggurat_normal(rng);
                }
                self.margin_sum += a.abs();
                self.margin_count += 1;
                chunk[col_src.map_or(pj, |m| m[pj])] = match &self.adc {
                    Some(adc) => {
                        if a.abs() > adc.full_scale() {
                            self.counter.adc_saturations += 1;
                        }
                        adc.quantize(a)
                    }
                    None => a,
                };
            }
        }
        self.row_scratch = active;
    }

    /// Bytes of reusable kernel scratch currently held by this array
    /// (column accumulators plus the batch row-resolution buffer) — the
    /// raw material of the `scratch_bytes` telemetry gauge.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.capacity() * std::mem::size_of::<f64>()
            + self.row_scratch.capacity() * std::mem::size_of::<(usize, usize)>()
    }

    /// Flips the stored sign of the (non-defective) cell at physical
    /// `(row, col)` — the transient-upset hook of the chaos engine,
    /// modelling a particle strike or write-path glitch between scrubs.
    /// No electrical write is tallied (the upset is not an operation the
    /// periphery performed), so op-counter-derived wear is unaffected.
    /// Returns `false` when the cell is defective (a pinned free layer
    /// absorbs the hit).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn flip_stored_sign(&mut self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        let idx = row * self.cols + col;
        if self.cells[idx].is_defective() {
            return false;
        }
        let s = self.cells[idx].stored_sign();
        self.cells[idx].program(-s);
        let mut eff = self.cells[idx].effective_weight();
        // Keep the cell's accumulated conductance drift folded in, as
        // refresh_eff would.
        if let Some(hook) = &self.aging {
            eff *= hook.state.drift(idx);
        }
        self.eff[idx] = eff;
        self.refresh_wd();
        self.invalidate_packed();
        true
    }

    /// Captures the complete mutable state of this array for a die
    /// checkpoint (see [`CrossbarState`]).
    pub fn export_state(&self) -> CrossbarState {
        CrossbarState {
            cells: self.cells.iter().map(|c| c.state()).collect(),
            eff: self.eff.clone(),
            row_enabled: self.row_enabled.clone(),
            counter: self.counter,
            defects: self.defects.iter().map(|((r, c), k)| (r, c, k)).collect(),
            spares: self
                .spares
                .iter()
                .map(|s| SpareColumnState {
                    cells: s.cells.iter().map(|c| c.state()).collect(),
                    used: s.used,
                })
                .collect(),
            row_src: self.row_src.clone(),
            col_src: self.col_src.clone(),
            margin_sum: self.margin_sum,
            margin_count: self.margin_count,
            packed_calls: self.packed_calls,
            aging: self.aging.as_deref().map(|hook| AgingHookState {
                aging: hook.state.snapshot(),
                golden: hook.golden.clone(),
                seen_reads: hook.seen_reads,
                seen_writes: hook.seen_writes,
            }),
        }
    }

    /// Reapplies a captured state onto a crossbar built by the same
    /// deterministic constructor (and, when the checkpoint carries
    /// aging state, with [`Crossbar::enable_aging`] already attached
    /// under the same config). Every mutable field is overwritten —
    /// `eff` verbatim, so accumulated drift survives — then the derived
    /// tables (folded weights, packed plane, enabled-row cache) are
    /// rebuilt. After the call the array is bit-identical to the one
    /// that exported the state: outputs, tallies, margins, and every
    /// event-RNG stream position.
    ///
    /// # Panics
    ///
    /// Panics if any population, shape, or aging-attachment check
    /// fails — the state came from a differently built array.
    pub fn import_state(&mut self, state: &CrossbarState) {
        let n = self.rows * self.cols;
        assert_eq!(state.cells.len(), n, "cell state population mismatch");
        assert_eq!(state.eff.len(), n, "eff state population mismatch");
        assert_eq!(state.row_enabled.len(), self.rows, "row_enabled state length mismatch");
        assert_eq!(state.spares.len(), self.spares.len(), "spare count mismatch");
        if let Some(map) = &state.row_src {
            assert_permutation(map, self.rows, "row_src");
        }
        if let Some(map) = &state.col_src {
            assert_permutation(map, self.cols, "col_src");
        }
        for (cell, s) in self.cells.iter_mut().zip(&state.cells) {
            *cell = XnorBitCell::from_state(s);
        }
        self.eff.copy_from_slice(&state.eff);
        self.row_enabled.copy_from_slice(&state.row_enabled);
        self.enabled_count = self.row_enabled.iter().filter(|&&e| e).count();
        self.counter = state.counter;
        let mut defects = DefectMap::empty(self.rows, self.cols);
        for &(r, c, kind) in &state.defects {
            defects.inject(r, c, kind);
        }
        self.defects = defects;
        for (spare, s) in self.spares.iter_mut().zip(&state.spares) {
            assert_eq!(s.cells.len(), self.rows, "spare column population mismatch");
            spare.cells.clear();
            spare.cells.extend(s.cells.iter().map(XnorBitCell::from_state));
            spare.used = s.used;
        }
        self.row_src = state.row_src.clone();
        self.col_src = state.col_src.clone();
        self.margin_sum = state.margin_sum;
        self.margin_count = state.margin_count;
        self.packed_calls = state.packed_calls;
        match (self.aging.as_deref_mut(), &state.aging) {
            (Some(hook), Some(s)) => {
                assert_eq!(s.golden.len(), n, "golden image population mismatch");
                hook.state.restore(&s.aging);
                hook.golden = s.golden.clone();
                hook.seen_reads = s.seen_reads;
                hook.seen_writes = s.seen_writes;
            }
            (None, None) => {}
            _ => panic!("aging attachment mismatch between die and checkpoint"),
        }
        // `eff` was restored verbatim with drift already folded in:
        // rebuild only the derived tables (refresh_eff would re-apply
        // the drift factor a second time).
        self.refresh_wd();
        self.invalidate_packed();
    }
}

/// Panics unless `map` is a permutation of `0..len`.
fn assert_permutation(map: &[usize], len: usize, name: &str) {
    assert_eq!(map.len(), len, "{name} length mismatch");
    let mut seen = vec![false; len];
    for &v in map {
        assert!(v < len, "{name} entry {v} out of range {len}");
        assert!(!seen[v], "{name} repeats entry {v}");
        seen[v] = true;
    }
}

/// A quantized-weight crossbar of multi-level cells (`k` MTJs per cell,
/// `k + 1` levels), used by SpinBayes and the sub-set VI architecture.
#[derive(Debug, Clone)]
pub struct MlcCrossbar {
    rows: usize,
    cols: usize,
    eff: Vec<f64>,
    levels: usize,
    row_enabled: Vec<bool>,
    read_noise: f64,
    adc: Option<Adc>,
    counter: OpCounter,
    margin_sum: f64,
    margin_count: u64,
    /// Column accumulator scratch (`[acc | power]`), reused across
    /// evaluations to keep the kernel allocation-free.
    scratch: Vec<f64>,
}

impl MlcCrossbar {
    /// Programs a quantized crossbar: each real weight is clipped to
    /// `[-w_max, +w_max]` and quantized to the cell's `k + 1` levels.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, dims are zero, `k == 0`, or
    /// `w_max <= 0`.
    pub fn program(
        weights: &[f32],
        rows: usize,
        cols: usize,
        k: usize,
        w_max: f64,
        config: &CrossbarConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        let mut eff = Vec::with_capacity(rows * cols);
        let mut counter = OpCounter::new();
        for &w in weights {
            let mut cell = MlcBitCell::new(k, w_max, config.corner, rng);
            cell.program_weight(w as f64);
            eff.push(cell.effective_weight());
            counter.cell_writes += k as u64;
            counter.cell_reads += k as u64; // verify
        }
        let adc = config.adc_bits.map(|b| Adc::new(b, rows as f64 * w_max));
        Self {
            rows,
            cols,
            eff,
            levels: k + 1,
            row_enabled: vec![true; rows],
            read_noise: config.read_noise,
            adc,
            counter,
            margin_sum: 0.0,
            margin_count: 0,
            scratch: Vec::new(),
        }
    }

    /// Mean |analog column value| at the sense-amplifier input since the
    /// last [`MlcCrossbar::reset_sense_margin`] (see
    /// [`Crossbar::mean_sense_margin`]).
    pub fn mean_sense_margin(&self) -> f64 {
        if self.margin_count == 0 {
            0.0
        } else {
            self.margin_sum / self.margin_count as f64
        }
    }

    /// Starts a fresh sense-margin window.
    pub fn reset_sense_margin(&mut self) {
        self.margin_sum = 0.0;
        self.margin_count = 0;
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of conductance levels per cell.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The op counter accumulated so far.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Resets the op counter.
    pub fn reset_counter(&mut self) {
        self.counter.reset();
    }

    /// The stored (quantized, variation-perturbed) weight at a cell.
    pub fn effective_weight(&self, row: usize, col: usize) -> f64 {
        self.eff[row * self.cols + col]
    }

    /// Enables/disables a word line.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn set_row_enabled(&mut self, row: usize, enabled: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.row_enabled[row] = enabled;
    }

    /// Applies an in-field drift transform to every cell's effective
    /// weight (see [`Crossbar::apply_drift`]).
    pub fn apply_drift(&mut self, mut f: impl FnMut(f64) -> f64) {
        for w in &mut self.eff {
            *w = f(*w);
        }
    }

    /// Analog matrix-vector product over enabled rows.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn matvec(&mut self, input: &[f32], rng: &mut StdRng) -> Vec<f64> {
        let mut out = vec![0.0f64; self.cols];
        self.matvec_into(input, &mut out, rng);
        out
    }

    /// [`MlcCrossbar::matvec`] writing into a caller-provided buffer —
    /// the zero-allocation primitive of the forward-plan path. Column
    /// accumulators live in the reused scratch, so steady-state calls
    /// perform no heap allocation; float-op order, tallies and RNG
    /// consumption are identical to `matvec`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != cols`.
    pub fn matvec_into(&mut self, input: &[f32], out: &mut [f64], rng: &mut StdRng) {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        let active = self.row_enabled.iter().filter(|&&e| e).count() as u64;
        self.counter.cell_reads += active * self.cols as u64;
        self.counter.sa_evals += self.cols as u64;
        if self.adc.is_some() {
            self.counter.adc_converts += self.cols as u64;
        }
        self.counter.digital_ops += self.cols as u64;
        // Row-outer / column-inner over contiguous `eff` rows; partial
        // sums reach each column in ascending-row order, matching the
        // column-outer formulation bit for bit.
        let cols = self.cols;
        self.scratch.clear();
        self.scratch.resize(2 * cols, 0.0);
        let (acc, power) = self.scratch.split_at_mut(cols);
        for (i, (&xi, &enabled)) in input.iter().zip(&self.row_enabled).enumerate() {
            if !enabled {
                continue;
            }
            let x = xi as f64;
            let eff_row = &self.eff[i * cols..(i + 1) * cols];
            for ((a, pw), &w) in acc.iter_mut().zip(power.iter_mut()).zip(eff_row) {
                let term = x * w;
                *a += term;
                *pw += term * term;
            }
        }
        for ((o, &a), &pw) in out.iter_mut().zip(acc.iter()).zip(power.iter()) {
            let mut a = a;
            if self.read_noise > 0.0 && pw > 0.0 {
                a += self.read_noise * pw.sqrt() * stats::ziggurat_normal(rng);
            }
            self.margin_sum += a.abs();
            self.margin_count += 1;
            *o = match &self.adc {
                Some(adc) => {
                    if a.abs() > adc.full_scale() {
                        self.counter.adc_saturations += 1;
                    }
                    adc.quantize(a)
                }
                None => a,
            };
        }
    }

    /// Bytes of reusable kernel scratch currently held by this array
    /// (see [`Crossbar::scratch_bytes`]).
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.capacity() * std::mem::size_of::<f64>()
    }

    /// Raw sense-margin accumulator `(sum, count)` (see
    /// [`Crossbar::sense_margin_parts`]).
    pub fn sense_margin_parts(&self) -> (f64, u64) {
        (self.margin_sum, self.margin_count)
    }

    /// Folds externally accumulated sense-margin statistics into this
    /// crossbar (see [`Crossbar::merge_sense_margin`]).
    pub fn merge_sense_margin(&mut self, sum: f64, count: u64) {
        self.margin_sum += sum;
        self.margin_count += count;
    }

    /// Captures the complete mutable state of this array for a die
    /// checkpoint (see [`MlcCrossbarState`]).
    pub fn export_state(&self) -> MlcCrossbarState {
        MlcCrossbarState {
            eff: self.eff.clone(),
            row_enabled: self.row_enabled.clone(),
            counter: self.counter,
            margin_sum: self.margin_sum,
            margin_count: self.margin_count,
        }
    }

    /// Reapplies a captured state onto an array built by the same
    /// deterministic constructor (see [`Crossbar::import_state`]).
    ///
    /// # Panics
    ///
    /// Panics if the state population disagrees with this array's
    /// geometry.
    pub fn import_state(&mut self, state: &MlcCrossbarState) {
        assert_eq!(state.eff.len(), self.rows * self.cols, "eff state population mismatch");
        assert_eq!(state.row_enabled.len(), self.rows, "row_enabled state length mismatch");
        self.eff.copy_from_slice(&state.eff);
        self.row_enabled.copy_from_slice(&state.row_enabled);
        self.counter = state.counter;
        self.margin_sum = state.margin_sum;
        self.margin_count = state.margin_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_device::{DefectKind, MtjParams, VariationModel};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(101)
    }

    fn ideal() -> CrossbarConfig {
        CrossbarConfig::ideal()
    }

    #[test]
    fn ideal_crossbar_computes_exact_mvm() {
        let mut r = rng();
        // 3 inputs × 2 outputs.
        let w = vec![1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let mut xbar = Crossbar::program(&w, 3, 2, &ideal(), &mut r);
        let y = xbar.matvec(&[1.0, 2.0, 3.0], &mut r);
        // y0 = 1·1 + 2·1 + 3·(−1) = 0 ; y1 = −1 + 2 − 3 = −2.
        assert!((y[0] - 0.0).abs() < 1e-9);
        assert!((y[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn read_noise_perturbs_output() {
        let mut r = rng();
        let w = vec![1.0; 64];
        let config = CrossbarConfig { read_noise: 0.05, ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 64, 1, &config, &mut r);
        let x = vec![1.0f32; 64];
        let a = xbar.matvec(&x, &mut r)[0];
        let b = xbar.matvec(&x, &mut r)[0];
        assert_ne!(a, b);
        assert!((a - 64.0).abs() < 64.0 * 0.25);
    }

    #[test]
    fn variation_shifts_weights_but_preserves_signs() {
        let mut r = rng();
        let corner = VariedParams::new(MtjParams::default(), VariationModel::uniform(0.08));
        let config = CrossbarConfig { corner, read_noise: 0.0, ..CrossbarConfig::ideal() };
        let w: Vec<f32> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xbar = Crossbar::program(&w, 10, 10, &config, &mut r);
        for row in 0..10 {
            for col in 0..10 {
                let expected = w[row * 10 + col] as f64;
                let actual = xbar.effective_weight(row, col);
                assert!(actual * expected > 0.0, "sign preserved at ({row},{col})");
                assert!((actual - expected).abs() < 0.5);
            }
        }
    }

    #[test]
    fn row_gating_removes_contribution() {
        let mut r = rng();
        let w = vec![1.0, 1.0, 1.0]; // 3×1
        let mut xbar = Crossbar::program(&w, 3, 1, &ideal(), &mut r);
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 3.0).abs() < 1e-9);
        xbar.set_row_enabled(1, false);
        assert_eq!(xbar.enabled_rows(), 2);
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 2.0).abs() < 1e-9);
        xbar.enable_all_rows();
        assert!((xbar.matvec(&[1.0, 1.0, 1.0], &mut r)[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn adc_quantizes_output() {
        let mut r = rng();
        let w = vec![1.0; 8];
        let config = CrossbarConfig { adc_bits: Some(2), ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 8, 1, &config, &mut r);
        let y = xbar.matvec(&[0.3; 8], &mut r)[0];
        // 2-bit ADC over ±8: step 4, mid-rise codes at ±2, ±6.
        assert!([-6.0, -2.0, 2.0, 6.0].iter().any(|&v| (y - v).abs() < 1e-9), "y {y}");
    }

    #[test]
    fn counters_track_operations() {
        let mut r = rng();
        let w = vec![1.0; 12];
        let mut xbar = Crossbar::program(&w, 4, 3, &ideal(), &mut r);
        let programming = *xbar.counter();
        assert_eq!(programming.cell_writes, 24, "two devices per cell");
        xbar.reset_counter();
        let _ = xbar.matvec(&[1.0; 4], &mut r);
        assert_eq!(xbar.counter().cell_reads, 12);
        assert_eq!(xbar.counter().sa_evals, 3);
        assert_eq!(xbar.counter().adc_converts, 0, "ideal readout has no ADC");
    }

    #[test]
    fn defects_perturb_some_weights() {
        let mut r = rng();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            ..CrossbarConfig::ideal()
        };
        let w = vec![1.0; 400];
        let xbar = Crossbar::program(&w, 20, 20, &config, &mut r);
        assert!(xbar.defects().defect_count() > 0);
        let bad = (0..20)
            .flat_map(|i| (0..20).map(move |j| (i, j)))
            .filter(|&(i, j)| (xbar.effective_weight(i, j) - 1.0).abs() > 0.1)
            .count();
        assert!(bad > 0, "defects must corrupt some weights");
        assert!(bad <= xbar.defects().defect_count());
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut r = rng();
        let w = vec![1.0, -1.0, -1.0, 1.0];
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        let batch = xbar.matmul(&[1.0, 0.0, 0.0, 1.0], 2, &mut r);
        assert_eq!(batch.len(), 4);
        assert!((batch[0] - 1.0).abs() < 1e-9);
        assert!((batch[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mlc_crossbar_quantized_mvm() {
        let mut r = rng();
        // 2 levels per device pair... k=4 → 5 levels over ±1: −1, −0.5, 0, 0.5, 1.
        let w = vec![0.45, -0.9, 0.1, 1.4]; // quantizes to 0.5, −1, 0, 1
        let mut xbar = MlcCrossbar::program(&w, 2, 2, 4, 1.0, &ideal(), &mut r);
        assert_eq!(xbar.levels(), 5);
        let y = xbar.matvec(&[1.0, 1.0], &mut r);
        assert!((y[0] - 0.5).abs() < 1e-6, "0.5 + 0 = 0.5, y0 {}", y[0]);
        assert!((y[1] - 0.0).abs() < 1e-6, "−1 + 1 = 0, y1 {}", y[1]);
    }

    #[test]
    fn mlc_quantization_error_bounded_by_step() {
        let mut r = rng();
        let w: Vec<f32> = (0..50).map(|i| (i as f32 / 25.0) - 1.0).collect();
        let xbar = MlcCrossbar::program(&w, 50, 1, 8, 1.0, &ideal(), &mut r);
        let step = 2.0 / 8.0;
        for (i, &orig) in w.iter().enumerate() {
            let q = xbar.effective_weight(i, 0);
            assert!((q - orig as f64).abs() <= step / 2.0 + 1e-9, "w {orig} q {q}");
        }
    }

    #[test]
    fn ir_drop_attenuates_far_cells() {
        let mut r = rng();
        let w = vec![1.0; 128]; // 128×1
        let clean = CrossbarConfig::ideal();
        let droopy = CrossbarConfig { ir_drop: 0.1, ..CrossbarConfig::ideal() };
        let mut a = Crossbar::program(&w, 128, 1, &clean, &mut r);
        let mut b = Crossbar::program(&w, 128, 1, &droopy, &mut r);
        let x = vec![1.0f32; 128];
        let ya = a.matvec(&x, &mut r)[0];
        let yb = b.matvec(&x, &mut r)[0];
        assert!(yb < ya, "IR drop must lose signal: {yb} vs {ya}");
        assert!(yb > 0.9 * ya, "first-order model stays mild: {yb} vs {ya}");
    }

    #[test]
    fn ir_drop_hits_far_rows_harder() {
        let mut r = rng();
        let w = vec![1.0; 100]; // 100×1
        let config = CrossbarConfig { ir_drop: 0.2, ..CrossbarConfig::ideal() };
        let mut xbar = Crossbar::program(&w, 100, 1, &config, &mut r);
        let mut near = vec![0.0f32; 100];
        near[0] = 1.0;
        let mut far = vec![0.0f32; 100];
        far[99] = 1.0;
        let y_near = xbar.matvec(&near, &mut r)[0];
        let y_far = xbar.matvec(&far, &mut r)[0];
        assert!(y_near > y_far, "{y_near} vs {y_far}");
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn program_rejects_bad_shape() {
        let mut r = rng();
        let _ = Crossbar::program(&[1.0; 5], 2, 3, &ideal(), &mut r);
    }

    #[test]
    fn zero_spares_matches_plain_program_exactly() {
        let w: Vec<f32> = (0..48).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.03),
            read_noise: 0.02,
            ..CrossbarConfig::default()
        };
        let mut ra = rng();
        let mut rb = rng();
        let mut a = Crossbar::program(&w, 8, 6, &config, &mut ra);
        let mut b = Crossbar::program_with_spares(&w, 8, 6, 0, &config, &mut rb);
        let x = vec![1.0f32; 8];
        assert_eq!(a.matvec(&x, &mut ra), b.matvec(&x, &mut rb));
    }

    #[test]
    fn substitute_column_replaces_defective_cells() {
        let mut r = rng();
        let w = vec![1.0f32; 16]; // 4×4
        let mut xbar = Crossbar::program_with_spares(&w, 4, 4, 2, &ideal(), &mut r);
        assert_eq!(xbar.spare_count(), 2);
        assert_eq!(xbar.available_spares(), 2);
        // Corrupt a column by hand, then repair it with a clean spare.
        let col = 1;
        for row in 0..4 {
            xbar.defects.inject(row, col, DefectKind::Open);
        }
        assert_eq!(xbar.defects().column_defect_count(col), 4);
        assert!(xbar.spare_is_clean(0));
        xbar.substitute_column(col, 0);
        assert_eq!(xbar.defects().column_defect_count(col), 0);
        assert_eq!(xbar.available_spares(), 1);
        // The substituted column carries the same stored signs.
        let y = xbar.matvec(&[1.0; 4], &mut r);
        assert!((y[col] - 4.0).abs() < 1e-9, "repaired column reads clean: {}", y[col]);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn substitute_column_rejects_reuse() {
        let mut r = rng();
        let w = vec![1.0f32; 4];
        let mut xbar = Crossbar::program_with_spares(&w, 2, 2, 1, &ideal(), &mut r);
        xbar.substitute_column(0, 0);
        xbar.substitute_column(1, 0);
    }

    #[test]
    fn remap_preserves_logical_matvec() {
        let mut r = rng();
        let w = vec![
            1.0, -1.0, 1.0, //
            -1.0, 1.0, 1.0, //
        ]; // 2×3
        let mut xbar = Crossbar::program(&w, 2, 3, &ideal(), &mut r);
        let x = [1.0f32, -1.0];
        let before = xbar.matvec(&x, &mut r);
        xbar.apply_remap(vec![1, 0], vec![2, 0, 1]);
        let after = xbar.matvec(&x, &mut r);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-9, "remap must be transparent: {before:?} vs {after:?}");
        }
        let (rs, cs) = xbar.remap();
        assert_eq!(rs, vec![1, 0]);
        assert_eq!(cs, vec![2, 0, 1]);
    }

    #[test]
    fn remap_routes_row_gating_logically() {
        let mut r = rng();
        let w = vec![1.0f32; 4]; // 2×2
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        xbar.apply_remap(vec![1, 0], vec![0, 1]);
        xbar.set_row_enabled(0, false); // logical row 0
        let y = xbar.matvec(&[1.0, 1.0], &mut r);
        assert!((y[0] - 1.0).abs() < 1e-9, "only logical row 1 contributes: {y:?}");
    }

    #[test]
    #[should_panic(expected = "row_src repeats entry")]
    fn remap_rejects_non_permutation() {
        let mut r = rng();
        let w = vec![1.0f32; 4];
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        xbar.apply_remap(vec![0, 0], vec![0, 1]);
    }

    #[test]
    fn reprogram_and_stored_signs_round_trip() {
        let mut r = rng();
        let w = vec![1.0, -1.0, -1.0, 1.0];
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        xbar.apply_remap(vec![1, 0], vec![1, 0]);
        let w2 = vec![-1.0, -1.0, 1.0, 1.0];
        xbar.reprogram(&w2);
        assert_eq!(xbar.stored_logical_signs(), w2);
        let y = xbar.matvec(&[1.0, 1.0], &mut r);
        assert!((y[0] - 0.0).abs() < 1e-9);
        assert!((y[1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn read_row_senses_physical_weights() {
        let mut r = rng();
        let w = vec![1.0, -1.0, -1.0, 1.0];
        let mut xbar = Crossbar::program(&w, 2, 2, &ideal(), &mut r);
        let top = xbar.read_row(0, &mut r);
        assert!((top[0] - 1.0).abs() < 1e-9);
        assert!((top[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn enabled_count_cache_matches_fresh_scan() {
        let mut r = rng();
        let w = vec![1.0f32; 64]; // 8×8
        let mut xbar = Crossbar::program(&w, 8, 8, &ideal(), &mut r);
        for step in 0..200usize {
            // Deterministic toggle pattern with redundant sets (same
            // state written twice), bulk re-enables, and a mid-stream
            // remap — every mutation site the cache must survive.
            let row = (step * 5 + step / 7) % 8;
            let enabled = (step / 3) % 2 == 0;
            xbar.set_row_enabled(row, enabled);
            xbar.set_row_enabled(row, enabled);
            if step % 50 == 49 {
                xbar.enable_all_rows();
            }
            if step == 100 {
                xbar.apply_remap(vec![7, 6, 5, 4, 3, 2, 1, 0], (0..8).collect());
            }
            let scan = xbar.row_enabled.iter().filter(|&&e| e).count();
            assert_eq!(xbar.enabled_rows(), scan, "cache diverged at step {step}");
        }
    }

    #[test]
    fn row_major_kernel_bit_identical_to_reference() {
        // Worst-case feature mix: defective, remapped, IR-dropped,
        // ADC-quantized, partially disabled, noisy.
        let w: Vec<f32> =
            (0..12 * 10).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.07,
            ..CrossbarConfig::default()
        };
        let mut ra = StdRng::seed_from_u64(42);
        let mut rb = StdRng::seed_from_u64(42);
        let mut a = Crossbar::program(&w, 12, 10, &config, &mut ra);
        let mut b = Crossbar::program(&w, 12, 10, &config, &mut rb);
        let row_map: Vec<usize> = (0..12).map(|i| (i + 5) % 12).collect();
        let col_map: Vec<usize> = (0..10).map(|i| (i + 3) % 10).collect();
        a.apply_remap(row_map.clone(), col_map.clone());
        b.apply_remap(row_map, col_map);
        for xbar in [&mut a, &mut b] {
            xbar.set_row_enabled(3, false);
            xbar.set_row_enabled(7, false);
        }
        b.set_reference_kernel(true);
        for trial in 0..16 {
            let x: Vec<f32> =
                (0..12).map(|i| ((i * (trial + 3)) % 5) as f32 - 2.0).collect();
            let ya = a.matvec(&x, &mut ra);
            let yb = b.matvec(&x, &mut rb);
            for (j, (va, vb)) in ya.iter().zip(&yb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "col {j} trial {trial}: {va} vs {vb}"
                );
            }
        }
        // Counters, margin statistics, and the downstream RNG position
        // advance identically too.
        assert_eq!(a.counter(), b.counter());
        let ((sa, ca), (sb, cb)) = (a.sense_margin_parts(), b.sense_margin_parts());
        assert_eq!(sa.to_bits(), sb.to_bits());
        assert_eq!(ca, cb);
        assert_eq!(
            stats::standard_normal(&mut ra).to_bits(),
            stats::standard_normal(&mut rb).to_bits(),
            "kernels must consume the same RNG stream"
        );
    }

    #[test]
    fn batched_matmul_bit_identical_to_reference_loop() {
        // The hoisted-bookkeeping batch kernel against a per-sample
        // seed-kernel loop: same outputs, counters, margins, and RNG
        // stream position.
        let w: Vec<f32> =
            (0..12 * 10).map(|i| if (i * 5) % 4 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.07,
            ..CrossbarConfig::default()
        };
        let mut ra = StdRng::seed_from_u64(1717);
        let mut rb = StdRng::seed_from_u64(1717);
        let mut a = Crossbar::program(&w, 12, 10, &config, &mut ra);
        let mut b = Crossbar::program(&w, 12, 10, &config, &mut rb);
        let row_map: Vec<usize> = (0..12).map(|i| (i + 4) % 12).collect();
        let col_map: Vec<usize> = (0..10).map(|i| (i + 7) % 10).collect();
        a.apply_remap(row_map.clone(), col_map.clone());
        b.apply_remap(row_map, col_map);
        for xbar in [&mut a, &mut b] {
            xbar.set_row_enabled(1, false);
            xbar.set_row_enabled(8, false);
        }
        let n = 7;
        let inputs: Vec<f32> =
            (0..n * 12).map(|i| ((i * 3) % 11) as f32 / 5.0 - 1.0).collect();
        let ya = a.matmul(&inputs, n, &mut ra);
        let mut yb = vec![0.0f64; n * 10];
        for (input, chunk) in inputs.chunks_exact(12).zip(yb.chunks_exact_mut(10)) {
            chunk.copy_from_slice(&b.matvec_reference(input, &mut rb));
        }
        for (i, (va, vb)) in ya.iter().zip(&yb).enumerate() {
            assert_eq!(va.to_bits(), vb.to_bits(), "element {i}: {va} vs {vb}");
        }
        assert_eq!(a.counter(), b.counter());
        let ((sa, ca), (sb, cb)) = (a.sense_margin_parts(), b.sense_margin_parts());
        assert_eq!(sa.to_bits(), sb.to_bits());
        assert_eq!(ca, cb);
        assert_eq!(
            stats::standard_normal(&mut ra).to_bits(),
            stats::standard_normal(&mut rb).to_bits(),
            "batched kernel must consume the same RNG stream"
        );
    }

    #[test]
    fn into_variants_bit_identical_and_reuse_scratch() {
        // matvec_into / matmul_into against their allocating twins on a
        // full-feature tile, from a dirty output buffer, under every
        // kernel policy — then again to prove the scratch is warm (no
        // capacity growth).
        let w: Vec<f32> =
            (0..12 * 10).map(|i| if (i * 11) % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.07,
            ..CrossbarConfig::default()
        };
        for policy in [KernelPolicy::Reference, KernelPolicy::Scalar, KernelPolicy::Auto] {
            let mut ra = StdRng::seed_from_u64(77);
            let mut rb = StdRng::seed_from_u64(77);
            let mut a = Crossbar::program(&w, 12, 10, &config, &mut ra);
            let mut b = Crossbar::program(&w, 12, 10, &config, &mut rb);
            for xbar in [&mut a, &mut b] {
                xbar.set_row_enabled(2, false);
                xbar.set_kernel_policy(policy);
            }
            let x: Vec<f32> = (0..12).map(|i| ((i * 3) % 7) as f32 / 3.0 - 1.0).collect();
            let expect = a.matvec(&x, &mut ra);
            let mut got = vec![f64::NAN; 10];
            b.matvec_into(&x, &mut got, &mut rb);
            for (va, vb) in expect.iter().zip(&got) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{policy:?} matvec_into diverged");
            }
            let n = 5;
            let inputs: Vec<f32> =
                (0..n * 12).map(|i| ((i * 7) % 9) as f32 / 4.0 - 1.0).collect();
            let expect = a.matmul(&inputs, n, &mut ra);
            let mut got = vec![f64::NAN; n * 10];
            b.matmul_into(&inputs, n, &mut got, &mut rb);
            for (va, vb) in expect.iter().zip(&got) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{policy:?} matmul_into diverged");
            }
            assert_eq!(a.counter(), b.counter(), "{policy:?} tallies diverged");
            // Warm scratch: a repeat call must not grow the buffers.
            let bytes = b.scratch_bytes();
            b.matmul_into(&inputs, n, &mut got, &mut rb);
            assert_eq!(b.scratch_bytes(), bytes, "{policy:?} scratch grew when warm");
            assert!(bytes > 0);
        }
    }

    #[test]
    fn mlc_matvec_into_bit_identical_to_matvec() {
        let w: Vec<f32> = (0..8 * 6).map(|i| ((i * 5) % 7) as f32 / 3.5 - 1.0).collect();
        let config = CrossbarConfig { read_noise: 0.04, adc_bits: Some(6), ..ideal() };
        let mut ra = StdRng::seed_from_u64(55);
        let mut rb = StdRng::seed_from_u64(55);
        let mut a = MlcCrossbar::program(&w, 8, 6, 4, 1.0, &config, &mut ra);
        let mut b = MlcCrossbar::program(&w, 8, 6, 4, 1.0, &config, &mut rb);
        for xbar in [&mut a, &mut b] {
            xbar.set_row_enabled(3, false);
        }
        let x: Vec<f32> = (0..8).map(|i| (i as f32 / 4.0) - 1.0).collect();
        for _ in 0..4 {
            let expect = a.matvec(&x, &mut ra);
            let mut got = vec![f64::NAN; 6];
            b.matvec_into(&x, &mut got, &mut rb);
            for (va, vb) in expect.iter().zip(&got) {
                assert_eq!(va.to_bits(), vb.to_bits(), "mlc matvec_into diverged");
            }
        }
        assert_eq!(a.counter(), b.counter());
        let ((sa, ca), (sb, cb)) = (a.sense_margin_parts(), b.sense_margin_parts());
        assert_eq!(sa.to_bits(), sb.to_bits());
        assert_eq!(ca, cb);
        assert!(b.scratch_bytes() > 0);
    }

    #[test]
    fn matvec_seed42_golden_vector() {
        // Seed-42 golden vector (same convention as the neuspin-core RNG
        // golden tests): a defective, remapped, IR-dropped, quantized,
        // partially disabled, noisy 16×8 crossbar. These bits were
        // captured from the seed kernel; they pin the full evaluation
        // path — programming stream, remap routing, IR denominators,
        // noise draws, ADC codes — against silent drift. (Re-captured
        // when read noise moved from Box–Muller to the ziggurat
        // sampler; only column 2 shifted, the ADC absorbed the rest.)
        const GOLDEN_BITS: [u64; 8] = [
            0x4006000000000000, // 2.75
            0x402f800000000000, // 15.75
            0xbfe8000000000000, // -0.75
            0x3fe8000000000000, // 0.75
            0x3ffc000000000000, // 1.75
            0xbfe8000000000000, // -0.75
            0x3ff4000000000000, // 1.25
            0x3ffc000000000000, // 1.75
        ];
        let w: Vec<f32> =
            (0..16 * 8).map(|i| if (i * 5) % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.07,
            ..CrossbarConfig::default()
        };
        let x: Vec<f32> = (0..16).map(|i| ((i * 3) % 7) as f32 / 3.0 - 1.0).collect();
        // Both kernels must reproduce the recorded bits.
        for reference in [false, true] {
            let mut r = StdRng::seed_from_u64(42);
            let mut xbar = Crossbar::program(&w, 16, 8, &config, &mut r);
            let row_map: Vec<usize> = (0..16).map(|i| (i + 9) % 16).collect();
            let col_map: Vec<usize> = (0..8).map(|i| (i + 5) % 8).collect();
            xbar.apply_remap(row_map, col_map);
            xbar.set_row_enabled(2, false);
            xbar.set_row_enabled(11, false);
            xbar.set_reference_kernel(reference);
            let y = xbar.matvec(&x, &mut r);
            for (j, (v, &bits)) in y.iter().zip(&GOLDEN_BITS).enumerate() {
                assert_eq!(
                    v.to_bits(),
                    bits,
                    "col {j} (reference={reference}): got {v}, want {}",
                    f64::from_bits(bits)
                );
            }
        }
    }

    /// Twin helper for the packed edge-case tests: two bit-identical
    /// noiseless crossbars, the second pinned to the seed oracle.
    fn noiseless_twins(w: &[f32], rows: usize, cols: usize, seed: u64) -> (Crossbar, Crossbar) {
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = StdRng::seed_from_u64(seed);
        let a = Crossbar::program(w, rows, cols, &ideal(), &mut ra);
        let mut b = Crossbar::program(w, rows, cols, &ideal(), &mut rb);
        b.set_kernel_policy(KernelPolicy::Reference);
        (a, b)
    }

    fn assert_outputs_and_state_match(ya: &[f64], yb: &[f64], a: &Crossbar, b: &Crossbar) {
        for (j, (va, vb)) in ya.iter().zip(yb).enumerate() {
            assert_eq!(va.to_bits(), vb.to_bits(), "col {j}: {va} vs {vb}");
        }
        assert_eq!(a.counter(), b.counter());
        let ((sa, ca), (sb, cb)) = (a.sense_margin_parts(), b.sense_margin_parts());
        assert_eq!(sa.to_bits(), sb.to_bits());
        assert_eq!(ca, cb);
    }

    #[test]
    fn packed_kernel_word_boundary_geometries_match_reference() {
        // Row counts straddling the 64-bit word size (1, 63, 64, 65,
        // 128, 129): partial last words and single-row tiles must
        // popcount to the same bits as the seed kernel.
        let mut r = rng();
        for rows in [1usize, 63, 64, 65, 128, 129] {
            for cols in [1usize, 3] {
                let w: Vec<f32> = (0..rows * cols)
                    .map(|i| if (i * 13) % 5 < 2 { 1.0 } else { -1.0 })
                    .collect();
                let (mut a, mut b) = noiseless_twins(&w, rows, cols, 7 + rows as u64);
                for trial in 0..3 {
                    let x: Vec<f32> =
                        (0..rows).map(|i| [1.0f32, -1.0, 0.0][(i + trial) % 3]).collect();
                    let ya = a.matvec(&x, &mut r);
                    let yb = b.matvec(&x, &mut r);
                    assert_outputs_and_state_match(&ya, &yb, &a, &b);
                }
                assert_eq!(a.packed_calls(), 3, "rows {rows} cols {cols}: packed must engage");
                assert_eq!(a.packed_state(), PackedState::Ready);
            }
        }
    }

    #[test]
    fn packed_kernel_fully_masked_column_matches_reference() {
        // A column whose every effective weight is zero (e.g. all its
        // cells defect-balanced) contributes no popcount words at all;
        // its accumulation must still be exactly +0.0 with the margin
        // and ADC stages applied, like the scalar kernels do.
        let mut r = rng();
        let (rows, cols) = (70, 4);
        let w: Vec<f32> =
            (0..rows * cols).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let (mut a, mut b) = noiseless_twins(&w, rows, cols, 23);
        for xbar in [&mut a, &mut b] {
            // Zero out column 1 positionally (apply_drift walks eff in
            // row-major physical order).
            let mut i = 0usize;
            xbar.apply_drift(|w| {
                let zero = i % cols == 1;
                i += 1;
                if zero { 0.0 } else { w }
            });
        }
        let x: Vec<f32> = (0..rows).map(|i| if i % 3 == 0 { -1.0 } else { 1.0 }).collect();
        let ya = a.matvec(&x, &mut r);
        let yb = b.matvec(&x, &mut r);
        assert_outputs_and_state_match(&ya, &yb, &a, &b);
        assert_eq!(ya[1].to_bits(), 0.0f64.to_bits(), "masked column reads exactly +0.0");
        assert_eq!(a.packed_calls(), 1, "all-ternary tile must engage the packed path");
    }

    #[test]
    fn packed_kernel_zero_enabled_rows_matches_reference() {
        // Every word line gated off: no cell reads, but the sense
        // amplifiers still evaluate each column to +0.0 and the margin
        // window still advances — identically in both kernels.
        let mut r = rng();
        let (rows, cols) = (65, 3);
        let w = vec![1.0f32; rows * cols];
        let (mut a, mut b) = noiseless_twins(&w, rows, cols, 31);
        for xbar in [&mut a, &mut b] {
            for row in 0..rows {
                xbar.set_row_enabled(row, false);
            }
        }
        let x = vec![1.0f32; rows];
        let ya = a.matvec(&x, &mut r);
        let yb = b.matvec(&x, &mut r);
        assert_outputs_and_state_match(&ya, &yb, &a, &b);
        assert!(ya.iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
        assert_eq!(a.counter().cell_reads - b.counter().cell_reads, 0);
        assert_eq!(a.packed_calls(), 1);
    }

    #[test]
    fn packed_plane_invalidation_tracks_every_mutation_site() {
        // The plane must go Stale at every weight-mutation site —
        // substitute_column, apply_remap, scrub, apply_drift — and the
        // next evaluation must rebuild it against the *new* weights.
        let mut ra = rng();
        let mut rb = rng();
        let (rows, cols) = (66, 4);
        let w: Vec<f32> =
            (0..rows * cols).map(|i| if (i * 3) % 7 < 4 { 1.0 } else { -1.0 }).collect();
        let mut a = Crossbar::program_with_spares(&w, rows, cols, 2, &ideal(), &mut ra);
        let mut b = Crossbar::program_with_spares(&w, rows, cols, 2, &ideal(), &mut rb);
        b.set_kernel_policy(KernelPolicy::Reference);
        let x: Vec<f32> = (0..rows).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert_eq!(a.packed_state(), PackedState::Stale, "no plane before first evaluation");

        let check = |a: &mut Crossbar, b: &mut Crossbar, ra: &mut StdRng, rb: &mut StdRng| {
            let ya = a.matvec(&x, ra);
            let yb = b.matvec(&x, rb);
            assert_outputs_and_state_match(&ya, &yb, a, b);
        };
        check(&mut a, &mut b, &mut ra, &mut rb);
        assert_eq!(a.packed_state(), PackedState::Ready);

        // Redundancy repair rewires a physical column.
        a.substitute_column(2, 0);
        b.substitute_column(2, 0);
        assert_eq!(a.packed_state(), PackedState::Stale, "substitute_column must invalidate");
        check(&mut a, &mut b, &mut ra, &mut rb);
        assert_eq!(a.packed_state(), PackedState::Ready);

        // Remapping reprograms the array into new physical homes.
        let row_map: Vec<usize> = (0..rows).map(|i| (i + 17) % rows).collect();
        let col_map: Vec<usize> = (0..cols).map(|i| (i + 1) % cols).collect();
        a.apply_remap(row_map.clone(), col_map.clone());
        b.apply_remap(row_map, col_map);
        assert_eq!(a.packed_state(), PackedState::Stale, "apply_remap must invalidate");
        check(&mut a, &mut b, &mut ra, &mut rb);

        // A scrub rewrites the golden contents.
        let cfg = neuspin_device::AgingConfig { seed: 5, ..neuspin_device::AgingConfig::default() };
        a.enable_aging(&cfg);
        b.enable_aging(&cfg);
        a.scrub();
        b.scrub();
        assert_eq!(a.packed_state(), PackedState::Stale, "scrub must invalidate");
        check(&mut a, &mut b, &mut ra, &mut rb);

        // In-field drift makes the weights non-ternary: the rebuild
        // must classify the tile unsupported and fall back to the
        // scalar kernel — still bit-identical to the oracle.
        a.apply_drift(|w| w * 0.5);
        b.apply_drift(|w| w * 0.5);
        assert_eq!(a.packed_state(), PackedState::Stale, "apply_drift must invalidate");
        let engaged_before = a.packed_calls();
        check(&mut a, &mut b, &mut ra, &mut rb);
        assert_eq!(a.packed_state(), PackedState::Unsupported);
        assert_eq!(a.packed_calls(), engaged_before, "drifted tile must not engage");
    }

    #[test]
    fn aging_flips_decay_contents_and_scrub_restores() {
        let mut r = rng();
        let w: Vec<f32> = (0..128).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let mut xbar = Crossbar::program(&w, 16, 8, &ideal(), &mut r);
        // Δ = 31 at 300 K: λ ≈ 0.5 over 4 h → ~40 % of cells flip.
        xbar.enable_aging(&neuspin_device::AgingConfig {
            seed: 7,
            thermal_stability: 31.0,
            ..neuspin_device::AgingConfig::default()
        });
        let report = xbar.advance_time(4.0);
        assert!(report.retention_flips > 20, "flips: {}", report.retention_flips);
        let decayed_signs = xbar
            .stored_logical_signs()
            .iter()
            .zip(&w)
            .filter(|(a, b)| a != b)
            .count();
        assert!(decayed_signs > 0, "stored contents must decay");
        let writes_before = xbar.counter().cell_writes;
        let decayed = xbar.scrub();
        assert_eq!(decayed, decayed_signs, "scrub reports the decayed cells");
        assert_eq!(xbar.stored_logical_signs(), w, "scrub restores golden contents");
        assert_eq!(
            xbar.counter().cell_writes - writes_before,
            (16 * 8 * 2) as u64,
            "one scrub pass costs a full reprogram"
        );
    }

    #[test]
    fn aging_drift_attenuates_weights_and_scrub_resets() {
        let mut r = rng();
        let w = vec![1.0f32; 64];
        let mut xbar = Crossbar::program(&w, 8, 8, &ideal(), &mut r);
        xbar.enable_aging(&neuspin_device::AgingConfig {
            seed: 3,
            drift_rate: 0.2,
            ..neuspin_device::AgingConfig::default()
        });
        xbar.advance_time(2.0);
        let expected = (-0.2f64 * 2.0).exp();
        let eff = xbar.effective_weight(4, 4);
        assert!((eff - expected).abs() < 1e-9, "eff {eff} vs decay {expected}");
        xbar.scrub();
        assert!((xbar.effective_weight(4, 4) - 1.0).abs() < 1e-9, "scrub resets drift");
    }

    #[test]
    fn endurance_wear_converts_cells_to_stuck_defects() {
        let mut r = rng();
        let w = vec![1.0f32; 64];
        let mut xbar = Crossbar::program(&w, 8, 8, &ideal(), &mut r);
        // Median lifetime of 1.5 write cycles: the two reprograms below
        // push nearly every cell past its budget.
        xbar.enable_aging(&neuspin_device::AgingConfig {
            seed: 11,
            endurance_median: 1.5,
            endurance_sigma: 0.1,
            ..neuspin_device::AgingConfig::default()
        });
        xbar.reprogram(&w);
        xbar.reprogram(&w);
        let report = xbar.advance_time(1.0);
        assert!(report.wear_outs > 50, "wear-outs: {}", report.wear_outs);
        assert_eq!(xbar.defects().defect_count(), report.wear_outs);
        assert!(xbar
            .defects()
            .iter()
            .all(|(_, k)| k == DefectKind::StuckParallel || k == DefectKind::StuckAntiParallel));
        // Worn cells are frozen: no further wear or flips from them.
        let again = xbar.advance_time(1.0);
        assert_eq!(again.wear_outs + report.wear_outs, xbar.defects().defect_count());
    }

    #[test]
    fn read_disturb_rides_the_op_counters() {
        let mut r = rng();
        let w = vec![1.0f32; 64];
        let config = neuspin_device::AgingConfig {
            seed: 5,
            read_disturb: 1e-3,
            ..neuspin_device::AgingConfig::default()
        };
        let mut idle = Crossbar::program(&w, 8, 8, &ideal(), &mut r);
        let mut busy = idle.clone();
        idle.enable_aging(&config);
        busy.enable_aging(&config);
        let mut rr = StdRng::seed_from_u64(88);
        for _ in 0..500 {
            let _ = busy.matvec(&[1.0; 8], &mut rr);
        }
        let quiet = idle.advance_time(1.0).disturb_flips;
        let disturbed = busy.advance_time(1.0).disturb_flips;
        assert_eq!(quiet, 0, "no reads, no disturb");
        assert!(disturbed > 10, "500 reads/cell at 1e-3: {disturbed}");
    }

    #[test]
    fn aging_trajectories_are_reproducible() {
        let mut r = rng();
        let w: Vec<f32> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let config = neuspin_device::AgingConfig {
            seed: 9,
            thermal_stability: 32.0,
            drift_rate: 0.05,
            drift_sigma: 0.1,
            ..neuspin_device::AgingConfig::default()
        };
        let mut a = Crossbar::program(&w, 8, 8, &ideal(), &mut r);
        let mut b = a.clone();
        a.enable_aging(&config);
        b.enable_aging(&config);
        for _ in 0..3 {
            let ra = a.advance_time(2.0);
            let rb = b.advance_time(2.0);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stored_logical_signs(), b.stored_logical_signs());
        for i in 0..8 {
            assert_eq!(
                a.effective_weight(i, i).to_bits(),
                b.effective_weight(i, i).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires enable_aging")]
    fn advance_time_requires_enable() {
        let mut r = rng();
        let mut xbar = Crossbar::program(&[1.0; 4], 2, 2, &ideal(), &mut r);
        let _ = xbar.advance_time(1.0);
    }

    #[test]
    #[should_panic(expected = "requires enable_aging")]
    fn scrub_requires_enable() {
        let mut r = rng();
        let mut xbar = Crossbar::program(&[1.0; 4], 2, 2, &ideal(), &mut r);
        let _ = xbar.scrub();
    }

    #[test]
    fn state_round_trip_onto_twin_is_bit_identical() {
        // The full lifecycle: defective fabrication with spares, aging,
        // a repair that physically swaps cells, a remap, a scrub, and a
        // chaos flip — then export, import onto a constructor twin, and
        // prove evaluation *and* further aging stay bit-identical.
        let w: Vec<f32> =
            (0..16 * 6).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(0.02),
            read_noise: 0.03,
            adc_bits: Some(6),
            ir_drop: 0.05,
            ..CrossbarConfig::default()
        };
        let aging_cfg = neuspin_device::AgingConfig {
            seed: 13,
            thermal_stability: 33.0,
            drift_rate: 0.02,
            ..neuspin_device::AgingConfig::default()
        };
        let mut ra = StdRng::seed_from_u64(909);
        let mut a = Crossbar::program_with_spares(&w, 16, 6, 2, &config, &mut ra);
        a.enable_aging(&aging_cfg);
        let mut drive = StdRng::seed_from_u64(5);
        let _ = a.advance_time(2.0);
        a.substitute_column(1, 0);
        a.apply_remap((0..16).map(|i| (i + 3) % 16).collect(), vec![2, 0, 1, 4, 3, 5]);
        let _ = a.scrub();
        let _ = a.advance_time(1.5);
        a.set_row_enabled(4, false);
        a.flip_stored_sign(2, 3);
        let _ = a.matvec(&[1.0; 16], &mut drive);

        // The twin replays fabrication (same constructor, same seed) and
        // aging attachment, then receives the state.
        let mut rb = StdRng::seed_from_u64(909);
        let mut b = Crossbar::program_with_spares(&w, 16, 6, 2, &config, &mut rb);
        b.enable_aging(&aging_cfg);
        let state = a.export_state();
        b.import_state(&state);
        assert_eq!(b.export_state(), state, "re-export must reproduce the state");
        assert_eq!(a.defects(), b.defects());
        assert_eq!(a.remap(), b.remap());
        assert_eq!(a.enabled_rows(), b.enabled_rows());

        // Continued operation diverges nowhere: evaluation, margins,
        // tallies, and the aging event streams all line up.
        let mut da = StdRng::seed_from_u64(33);
        let mut db = StdRng::seed_from_u64(33);
        for trial in 0..4 {
            let x: Vec<f32> = (0..16).map(|i| ((i * (trial + 2)) % 5) as f32 - 2.0).collect();
            let ya = a.matvec(&x, &mut da);
            let yb = b.matvec(&x, &mut db);
            for (j, (va, vb)) in ya.iter().zip(&yb).enumerate() {
                assert_eq!(va.to_bits(), vb.to_bits(), "col {j} trial {trial}");
            }
        }
        assert_eq!(a.advance_time(2.0), b.advance_time(2.0), "aging streams must resume");
        assert_eq!(a.scrub(), b.scrub());
        assert_eq!(a.counter(), b.counter());
        let ((sa, ca), (sb, cb)) = (a.sense_margin_parts(), b.sense_margin_parts());
        assert_eq!(sa.to_bits(), sb.to_bits());
        assert_eq!(ca, cb);
    }

    #[test]
    fn mlc_state_round_trip_onto_twin_is_bit_identical() {
        let w: Vec<f32> = (0..8 * 5).map(|i| ((i * 5) % 7) as f32 / 3.5 - 1.0).collect();
        let config = CrossbarConfig { read_noise: 0.02, adc_bits: Some(6), ..ideal() };
        let mut ra = StdRng::seed_from_u64(111);
        let mut rb = StdRng::seed_from_u64(111);
        let mut a = MlcCrossbar::program(&w, 8, 5, 4, 1.0, &config, &mut ra);
        let mut b = MlcCrossbar::program(&w, 8, 5, 4, 1.0, &config, &mut rb);
        let mut drive = StdRng::seed_from_u64(6);
        a.set_row_enabled(2, false);
        a.apply_drift(|w| w * 0.97);
        let _ = a.matvec(&[0.5; 8], &mut drive);
        b.import_state(&a.export_state());
        let mut da = StdRng::seed_from_u64(44);
        let mut db = StdRng::seed_from_u64(44);
        let ya = a.matvec(&[0.25; 8], &mut da);
        let yb = b.matvec(&[0.25; 8], &mut db);
        for (va, vb) in ya.iter().zip(&yb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(a.counter(), b.counter());
    }

    #[test]
    fn flip_stored_sign_inverts_weight_and_scrub_heals() {
        let mut r = rng();
        let w = vec![1.0f32; 16]; // 4×4
        let mut xbar = Crossbar::program(&w, 4, 4, &ideal(), &mut r);
        xbar.enable_aging(&neuspin_device::AgingConfig::default());
        assert!(xbar.flip_stored_sign(1, 2));
        assert!((xbar.effective_weight(1, 2) + 1.0).abs() < 1e-9, "sign inverted");
        assert_eq!(xbar.scrub(), 1, "scrub sees exactly the flipped cell");
        assert!((xbar.effective_weight(1, 2) - 1.0).abs() < 1e-9, "scrub heals the upset");
        // A defective cell absorbs the hit.
        let mut bad = Crossbar::program(&w, 4, 4, &ideal(), &mut r);
        bad.cells[5].inject_plus_defect(DefectKind::Open);
        bad.cells[5].inject_minus_defect(DefectKind::Open);
        assert!(!bad.flip_stored_sign(1, 1));
    }

    #[test]
    #[should_panic(expected = "cell state population mismatch")]
    fn import_state_rejects_wrong_geometry() {
        let mut r = rng();
        let a = Crossbar::program(&[1.0; 4], 2, 2, &ideal(), &mut r);
        let mut b = Crossbar::program(&[1.0; 9], 3, 3, &ideal(), &mut r);
        b.import_state(&a.export_state());
    }

    #[test]
    fn sense_margin_tracks_column_magnitude() {
        let mut r = rng();
        let w = vec![1.0f32; 8]; // 4×2
        let mut xbar = Crossbar::program(&w, 4, 2, &ideal(), &mut r);
        assert_eq!(xbar.mean_sense_margin(), 0.0);
        let _ = xbar.matvec(&[1.0; 4], &mut r);
        assert!((xbar.mean_sense_margin() - 4.0).abs() < 1e-9);
        xbar.reset_sense_margin();
        assert_eq!(xbar.mean_sense_margin(), 0.0);
        let _ = xbar.matvec(&[0.5; 4], &mut r);
        assert!((xbar.mean_sense_margin() - 2.0).abs() < 1e-9);
    }
}
