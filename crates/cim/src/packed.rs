//! Bit-packed XNOR/popcount planes for the noiseless binary fast path.
//!
//! The SpinDrop stack is binary end-to-end: ±1 weights in differential
//! XNOR bit-cells, ±1 activations on the word lines. On an ideal
//! (noiseless, drift-free) tile every effective cell weight is exactly
//! `-1.0`, `0.0`, or `+1.0`, and a column's analog accumulation over
//! enabled rows is a small *integer* — representable exactly in `f64`
//! regardless of summation order. That licenses the classic XNOR-net
//! kernel: pack weight signs and input signs into `u64` lanes and
//! compute each column as
//!
//! ```text
//! acc = active − 2 · Σ_k popcount((w_sign_k ^ x_sign_k) & w_mask_k & x_act_k)
//! ```
//!
//! where `active = Σ_k popcount(w_mask_k & x_act_k)` counts the cells
//! that contribute a ±1 term at all. The result is bit-identical to the
//! scalar kernels' ascending-row floating-point accumulation, so the
//! packed path slots under the existing margin/ADC/energy stages
//! unchanged (see `Crossbar::matvec_packed_with`).
//!
//! A [`PackedPlane`] is one crossbar's packed view of its effective
//! weights in *physical* coordinates, rebuilt lazily whenever the
//! weights change (programming, repair, remap, aging). Three parallel
//! bitmaps per column word:
//!
//! * `sign` — 1 where the effective weight is `-1.0`;
//! * `mask` — 1 where the effective weight is `±1.0` (defect-zeroed and
//!   empty cells drop out of the popcount entirely);
//! * `x_act`/`x_sign` — the per-call input bitmaps, packed through the
//!   row remap and word-line gating so bit `p` of word `k` holds the
//!   logical input driving physical row `64·k + p`.
//!
//! Columns holding a *non-ternary* effective weight (short/open defects,
//! analog drift) cannot be packed; they are listed in `col_packed` and
//! fall back to the reference-order scalar walk inside the packed
//! kernel. A tile where more than a quarter of the columns are
//! unpackable reports as unsupported via [`PackedPlane::build`]
//! returning `None` — the crossbar then stays on the scalar kernel.

/// Bit-packed image of a crossbar's effective weights plus the per-call
/// input bitmaps (physical coordinates, column-major words).
#[derive(Debug, Clone)]
pub(crate) struct PackedPlane {
    /// `u64` words per column: `ceil(rows / 64)`.
    words: usize,
    /// Weight-sign bitmap, `cols × words`, column-major: bit `p % 64` of
    /// `sign[j * words + p / 64]` is 1 iff `eff[p][j] == -1.0`.
    sign: Vec<u64>,
    /// Ternary-validity bitmap, same layout: 1 iff `eff[p][j] == ±1.0`.
    mask: Vec<u64>,
    /// Per-column packability: `false` where the column holds an
    /// effective weight outside `{-1, 0, +1}` and must take the scalar
    /// fallback walk.
    col_packed: Vec<bool>,
    /// Input activity bitmap for the current call (bit = row enabled and
    /// input nonzero).
    x_act: Vec<u64>,
    /// Input sign bitmap for the current call (bit = input is `-1.0`).
    x_sign: Vec<u64>,
}

impl PackedPlane {
    /// Packs the row-major effective-weight matrix into sign/mask
    /// bitmaps. Returns `None` when more than a quarter of the columns
    /// hold non-ternary weights (variation corners, drifted tiles) —
    /// the packed kernel would then mostly run its scalar fallback, so
    /// the tile is better served by the scalar kernel outright.
    pub(crate) fn build(eff: &[f64], rows: usize, cols: usize) -> Option<Self> {
        debug_assert_eq!(eff.len(), rows * cols);
        let words = rows.div_ceil(64);
        let mut sign = vec![0u64; cols * words];
        let mut mask = vec![0u64; cols * words];
        let mut col_packed = vec![true; cols];
        for (p, row) in eff.chunks_exact(cols).enumerate() {
            let word = p / 64;
            let bit = 1u64 << (p % 64);
            for (j, &w) in row.iter().enumerate() {
                if !col_packed[j] {
                    continue;
                }
                if w == 1.0 {
                    mask[j * words + word] |= bit;
                } else if w == -1.0 {
                    mask[j * words + word] |= bit;
                    sign[j * words + word] |= bit;
                } else if w != 0.0 {
                    // Short/open defect or analog drift: this column
                    // stays scalar. (Its partially packed words are
                    // never read.)
                    col_packed[j] = false;
                }
            }
        }
        let scalar_cols = col_packed.iter().filter(|&&ok| !ok).count();
        if scalar_cols * 4 > cols {
            return None;
        }
        Some(Self {
            words,
            sign,
            mask,
            col_packed,
            x_act: vec![0; words],
            x_sign: vec![0; words],
        })
    }

    /// Packs one input vector into the activity/sign bitmaps, routing
    /// each physical row `p` to its logical source line and applying
    /// the word-line gating. Returns `false` — leaving the caller to
    /// fall back to the scalar kernel — if any *enabled* input is not
    /// exactly `-1.0`, `0.0`, or `+1.0` (NaN included): only ternary
    /// inputs keep the popcount identity exact.
    pub(crate) fn pack_input(
        &mut self,
        input: &[f32],
        row_src: Option<&[usize]>,
        row_enabled: &[bool],
    ) -> bool {
        self.x_act.fill(0);
        self.x_sign.fill(0);
        for p in 0..input.len() {
            let l = row_src.map_or(p, |m| m[p]);
            if !row_enabled[l] {
                continue;
            }
            let x = input[l];
            if x == 0.0 {
                continue; // exact no-op in the scalar kernels too
            }
            let word = p / 64;
            let bit = 1u64 << (p % 64);
            if x == 1.0 {
                self.x_act[word] |= bit;
            } else if x == -1.0 {
                self.x_act[word] |= bit;
                self.x_sign[word] |= bit;
            } else {
                return false;
            }
        }
        true
    }

    /// Whether column `j` (physical) is packable; unpackable columns
    /// take the scalar fallback walk inside the packed kernel.
    pub(crate) fn col_is_packed(&self, j: usize) -> bool {
        self.col_packed[j]
    }

    /// The noiseless accumulation of physical column `j` against the
    /// bitmaps packed by the last [`PackedPlane::pack_input`]: an exact
    /// small integer, returned as the `f64` the finalize stage expects.
    pub(crate) fn column_sum(&self, j: usize) -> f64 {
        let sign = &self.sign[j * self.words..(j + 1) * self.words];
        let mask = &self.mask[j * self.words..(j + 1) * self.words];
        let mut active: u64 = 0;
        let mut negative: u64 = 0;
        for (((&s, &m), &xa), &xs) in
            sign.iter().zip(mask).zip(&self.x_act).zip(&self.x_sign)
        {
            let live = m & xa;
            active += u64::from(live.count_ones());
            negative += u64::from(((s ^ xs) & live).count_ones());
        }
        (active as i64 - 2 * negative as i64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_packs_ternary_weights_and_flags_analog_columns() {
        // 3 columns: ternary, ternary-with-zero, analog (short-like).
        let eff = vec![
            1.0, -1.0, 49.3, //
            -1.0, 0.0, 1.0, //
            1.0, 1.0, -1.0,
        ];
        let plane = PackedPlane::build(&eff, 3, 3);
        // 1 of 3 columns unpackable → 4·1 > 3 → unsupported.
        assert!(plane.is_none());

        let eff = vec![
            1.0, -1.0, 49.3, 1.0, 1.0, //
            -1.0, 0.0, 1.0, -1.0, 1.0, //
            1.0, 1.0, -1.0, 1.0, -1.0,
        ];
        let plane = PackedPlane::build(&eff, 3, 5).expect("1 of 5 scalar is supported");
        assert!(plane.col_is_packed(0));
        assert!(plane.col_is_packed(1));
        assert!(!plane.col_is_packed(2));
        assert_eq!(plane.words, 1);
        // Column 0: rows {+1, -1, +1} → mask 0b111, sign 0b010.
        assert_eq!(plane.mask[0], 0b111);
        assert_eq!(plane.sign[0], 0b010);
        // Column 1: rows {-1, 0, +1} → mask 0b101, sign 0b001.
        assert_eq!(plane.mask[1], 0b101);
        assert_eq!(plane.sign[1], 0b001);
    }

    #[test]
    fn column_sum_matches_scalar_dot_product() {
        let rows = 131; // crosses two word boundaries, non-multiple of 64
        let eff: Vec<f64> = (0..rows)
            .map(|i| match i % 3 {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0,
            })
            .collect();
        let mut plane = PackedPlane::build(&eff, rows, 1).unwrap();
        let input: Vec<f32> =
            (0..rows).map(|i| [1.0f32, -1.0, 0.0, 1.0, -1.0][i % 5]).collect();
        let mut enabled = vec![true; rows];
        enabled[7] = false;
        enabled[64] = false;
        assert!(plane.pack_input(&input, None, &enabled));
        let expect: f64 = (0..rows)
            .filter(|&i| enabled[i])
            .map(|i| input[i] as f64 * eff[i])
            .sum();
        assert_eq!(plane.column_sum(0).to_bits(), expect.to_bits());
    }

    #[test]
    fn pack_input_rejects_non_ternary_and_nan_inputs() {
        let eff = vec![1.0, -1.0];
        let mut plane = PackedPlane::build(&eff, 2, 1).unwrap();
        assert!(plane.pack_input(&[1.0, -1.0], None, &[true, true]));
        assert!(!plane.pack_input(&[1.0, 0.5], None, &[true, true]));
        assert!(!plane.pack_input(&[f32::NAN, 1.0], None, &[true, true]));
        // A non-ternary input on a *disabled* line is invisible.
        assert!(plane.pack_input(&[1.0, 0.5], None, &[true, false]));
        // Negative zero is an exact no-op, not a sign.
        assert!(plane.pack_input(&[-0.0, 1.0], None, &[true, true]));
        assert_eq!(plane.column_sum(0), -1.0);
    }

    #[test]
    fn pack_input_routes_rows_through_remap() {
        // Physical row p carries logical line row_src[p].
        let eff = vec![1.0, -1.0, 1.0]; // 3×1
        let mut plane = PackedPlane::build(&eff, 3, 1).unwrap();
        let row_src = [2usize, 0, 1];
        let input = [1.0f32, -1.0, 1.0];
        assert!(plane.pack_input(&input, Some(&row_src), &[true; 3]));
        // acc = x[2]·w[0] + x[0]·w[1] + x[1]·w[2] = 1 − 1 − 1.
        assert_eq!(plane.column_sum(0), -1.0);
    }
}
