//! The word-line decoder with multi-enable capability.
//!
//! NeuSpin's crossbars use a decoder that can enable *multiple
//! consecutive addresses* at once (needed both for parallel MVM and for
//! the group gating of spatial dropout, Fig. 1b). This module tracks
//! the enable state and the decode activity for the energy model.


/// A word-line decoder over `rows` lines supporting consecutive
/// multi-enable.
///
/// # Examples
///
/// ```
/// use neuspin_cim::WordlineDecoder;
///
/// let mut dec = WordlineDecoder::new(16);
/// dec.disable_range(0, 16); // all lines off
/// dec.enable_range(4, 8);   // enable lines 4..12
/// assert_eq!(dec.enabled_count(), 8);
/// assert!(dec.is_enabled(4) && dec.is_enabled(11) && !dec.is_enabled(12));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordlineDecoder {
    enabled: Vec<bool>,
    decode_ops: u64,
}

impl WordlineDecoder {
    /// Creates a decoder with all `rows` lines enabled.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "rows must be positive");
        Self { enabled: vec![true; rows], decode_ops: 0 }
    }

    /// Number of word lines.
    pub fn rows(&self) -> usize {
        self.enabled.len()
    }

    /// Whether line `row` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn is_enabled(&self, row: usize) -> bool {
        self.enabled[row]
    }

    /// Number of enabled lines.
    pub fn enabled_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Enables exactly the consecutive range `start .. start + len`
    /// (one decode operation), leaving other lines untouched.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the decoder.
    pub fn enable_range(&mut self, start: usize, len: usize) {
        assert!(start + len <= self.enabled.len(), "range {start}+{len} exceeds {} rows", self.enabled.len());
        self.decode_ops += 1;
        for e in &mut self.enabled[start..start + len] {
            *e = true;
        }
    }

    /// Disables the consecutive range `start .. start + len` (one decode
    /// operation) — the gating primitive of spatial dropout.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the decoder.
    pub fn disable_range(&mut self, start: usize, len: usize) {
        assert!(start + len <= self.enabled.len(), "range {start}+{len} exceeds {} rows", self.enabled.len());
        self.decode_ops += 1;
        for e in &mut self.enabled[start..start + len] {
            *e = false;
        }
    }

    /// Enables all lines (one decode operation).
    pub fn enable_all(&mut self) {
        self.decode_ops += 1;
        self.enabled.iter_mut().for_each(|e| *e = true);
    }

    /// Decode operations performed so far.
    pub fn decode_ops(&self) -> u64 {
        self.decode_ops
    }

    /// Applies the enable pattern to a crossbar's row gates.
    pub fn apply_to(&self, xbar: &mut crate::Crossbar) {
        assert_eq!(self.rows(), xbar.rows(), "decoder/crossbar row mismatch");
        for (row, &e) in self.enabled.iter().enumerate() {
            xbar.set_row_enabled(row, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crossbar, CrossbarConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_fully_enabled() {
        let d = WordlineDecoder::new(8);
        assert_eq!(d.enabled_count(), 8);
    }

    #[test]
    fn range_gating() {
        let mut d = WordlineDecoder::new(10);
        d.disable_range(2, 5);
        assert_eq!(d.enabled_count(), 5);
        assert!(!d.is_enabled(2) && !d.is_enabled(6) && d.is_enabled(7));
        d.enable_range(2, 5);
        assert_eq!(d.enabled_count(), 10);
        assert_eq!(d.decode_ops(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_rejected() {
        let mut d = WordlineDecoder::new(4);
        d.disable_range(2, 3);
    }

    #[test]
    fn applies_to_crossbar() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut xbar = Crossbar::program(&[1.0; 8], 8, 1, &CrossbarConfig::ideal(), &mut rng);
        let mut d = WordlineDecoder::new(8);
        d.disable_range(0, 4);
        d.apply_to(&mut xbar);
        assert_eq!(xbar.enabled_rows(), 4);
        let y = xbar.matvec(&[1.0; 8], &mut rng);
        assert!((y[0] - 4.0).abs() < 1e-9);
    }
}
