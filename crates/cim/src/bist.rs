//! March-test built-in self-test (BIST) for binary crossbars.
//!
//! Production MRAM macros ship a BIST engine that marches write/read
//! patterns through the array and flags cells whose read-back deviates
//! from the written value. This module models that flow *through the
//! same bit-cell / sense-amplifier path the inference datapath uses*
//! ([`Crossbar::program_pattern`] + [`Crossbar::read_row`]): read noise
//! perturbs every observation, so the recovered [`DefectMap`] is an
//! **estimate** — misclassifications are possible and expected, exactly
//! as on silicon.
//!
//! ## Defect signatures
//!
//! With the differential XNOR cell, each fabrication defect leaves a
//! distinct fingerprint in the pair of normalized read-backs
//! `(r₊, r₋)` observed after programming `+1` and `−1` (healthy:
//! `(+1, −1)`):
//!
//! | defect                | `(r₊, r₋)`          | mean      |
//! |-----------------------|---------------------|-----------|
//! | short (either device) | `±83` everywhere    | huge      |
//! | open on plus device   | `(−0.67, −1.67)`    | `−1.17`   |
//! | open on minus device  | `(+1.67, +0.67)`    | `+1.17`   |
//! | stuck-at (various)    | `(+1, 0)` / `(0, −1)` | `±0.5`  |
//!
//! The classifier thresholds on those separations: anything beyond
//! [`BistConfig::short_threshold`] is a short; among the remaining
//! deviants, `|mean| >` [`BistConfig::open_threshold`] means open, the
//! rest are stuck-at (sign of the mean picks P vs AP). Stuck-at cells
//! whose frozen state happens to match the written pattern read back
//! healthy in one polarity — which is why the march runs both.
//!
//! Everything is deterministic given the seed of the caller-supplied
//! RNG.

use crate::crossbar::Crossbar;
use neuspin_device::{DefectConfusion, DefectKind, DefectMap};
use rand::rngs::StdRng;

/// Thresholds for the march-test classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BistConfig {
    /// Read-back deviation (from the ideal `+1` / `−1`) below which a
    /// cell is considered healthy. Must leave headroom above the read
    /// noise but stay below the `0.5` stuck-at separation.
    pub tolerance: f64,
    /// |read-back| beyond which the cell is classified as a short
    /// (an ideal short reads ≈ `83`).
    pub short_threshold: f64,
    /// |mean of the two polarity read-backs| beyond which a deviant
    /// cell is classified as an open (ideal open: `1.17`, ideal
    /// stuck-at: `0.5`).
    pub open_threshold: f64,
    /// March passes averaged per polarity (more passes average down
    /// read noise at the cost of test time).
    pub passes: usize,
}

impl Default for BistConfig {
    fn default() -> Self {
        Self { tolerance: 0.35, short_threshold: 10.0, open_threshold: 0.85, passes: 2 }
    }
}

/// Outcome of a march test: the estimated defect map plus tallies.
#[derive(Debug, Clone)]
pub struct BistReport {
    /// Cells flagged defective, with the classified kind. Physical
    /// coordinates, like the array itself.
    pub estimated: DefectMap,
    /// Cells flagged, by kind, in [`DefectKind::ALL`] order.
    pub flagged_by_kind: [usize; 4],
    /// Total row reads performed.
    pub row_reads: u64,
}

impl BistReport {
    /// Number of flagged cells.
    pub fn flagged(&self) -> usize {
        self.estimated.defect_count()
    }

    /// Fraction of `truth`'s defects of the given kinds that the march
    /// flagged *as some defect* (detection, not classification — a
    /// short caught as an open still counts as caught). Returns 1 if
    /// `truth` has no defect of those kinds.
    pub fn detection_rate(&self, truth: &DefectMap, kinds: &[DefectKind]) -> f64 {
        let mut total = 0usize;
        let mut caught = 0usize;
        for ((r, c), kind) in truth {
            if kinds.contains(&kind) {
                total += 1;
                if self.estimated.defect_at(r, c).is_some() {
                    caught += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            caught as f64 / total as f64
        }
    }

    /// Per-kind estimation quality against the true defect map
    /// (detected / misclassified / missed / false positives) — see
    /// [`DefectMap::confusion`]. Lifetime experiments use this to
    /// report how well the BIST tracked an aging population, not just
    /// the downstream accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `truth` was built for a different array shape.
    pub fn confusion(&self, truth: &DefectMap) -> DefectConfusion {
        self.estimated.confusion(truth)
    }
}

/// Runs a march-test BIST over the crossbar's *physical* array: solid
/// and checkerboard patterns in both polarities, each written and read
/// back [`BistConfig::passes`] times through the real sense path. The
/// array contents are restored afterwards (the logical weights are
/// snapshotted and re-programmed), so the BIST can run on a deployed
/// part.
///
/// Returns the estimated defect map; see the module docs for the
/// classification rules and their failure modes.
///
/// # Panics
///
/// Panics if `config.passes == 0`.
pub fn march_test(xbar: &mut Crossbar, config: &BistConfig, rng: &mut StdRng) -> BistReport {
    assert!(config.passes > 0, "BIST needs at least one pass");
    let (rows, cols) = (xbar.rows(), xbar.cols());
    let snapshot = xbar.stored_logical_signs();

    // Accumulated read-backs per cell and written polarity.
    let mut sum_plus = vec![0.0f64; rows * cols];
    let mut sum_minus = vec![0.0f64; rows * cols];
    let mut n_plus = vec![0u32; rows * cols];
    let mut n_minus = vec![0u32; rows * cols];
    let mut row_reads = 0u64;

    // March elements: solid-1, solid-0, checkerboard, inverse
    // checkerboard. Each cell sees every polarity at least twice per
    // pass.
    type Pattern = fn(usize, usize) -> f32;
    let elements: [Pattern; 4] = [
        |_r, _c| 1.0,
        |_r, _c| -1.0,
        |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 },
        |r, c| if (r + c) % 2 == 0 { -1.0 } else { 1.0 },
    ];
    for _ in 0..config.passes {
        for pattern in elements {
            xbar.program_pattern(pattern);
            for r in 0..rows {
                let readback = xbar.read_row(r, rng);
                row_reads += 1;
                for (c, &v) in readback.iter().enumerate() {
                    let idx = r * cols + c;
                    if pattern(r, c) > 0.0 {
                        sum_plus[idx] += v;
                        n_plus[idx] += 1;
                    } else {
                        sum_minus[idx] += v;
                        n_minus[idx] += 1;
                    }
                }
            }
        }
    }

    let mut estimated = DefectMap::empty(rows, cols);
    let mut flagged_by_kind = [0usize; 4];
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let r_plus = sum_plus[idx] / n_plus[idx] as f64;
            let r_minus = sum_minus[idx] / n_minus[idx] as f64;
            let kind = classify(r_plus, r_minus, config);
            if let Some(kind) = kind {
                estimated.inject(r, c, kind);
                let slot = DefectKind::ALL.iter().position(|&k| k == kind).unwrap();
                flagged_by_kind[slot] += 1;
            }
        }
    }

    // Restore the pre-test contents through any active remap.
    xbar.reprogram(&snapshot);

    BistReport { estimated, flagged_by_kind, row_reads }
}

/// Classifies one cell from its mean read-backs in the two polarities.
fn classify(r_plus: f64, r_minus: f64, config: &BistConfig) -> Option<DefectKind> {
    if r_plus.abs() > config.short_threshold || r_minus.abs() > config.short_threshold {
        return Some(DefectKind::Short);
    }
    let err = (r_plus - 1.0).abs().max((r_minus + 1.0).abs());
    if err <= config.tolerance {
        return None;
    }
    let mean = (r_plus + r_minus) / 2.0;
    if mean.abs() > config.open_threshold {
        Some(DefectKind::Open)
    } else if mean > 0.0 {
        Some(DefectKind::StuckParallel)
    } else {
        Some(DefectKind::StuckAntiParallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarConfig;
    use neuspin_device::DefectRates;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(404)
    }

    #[test]
    fn clean_array_flags_nothing() {
        let mut r = rng();
        let w = vec![1.0f32; 64];
        let config = CrossbarConfig { read_noise: 0.02, ..CrossbarConfig::default() };
        let mut xbar = Crossbar::program(&w, 8, 8, &config, &mut r);
        let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
        assert_eq!(report.flagged(), 0, "{:?}", report.estimated);
        assert_eq!(report.row_reads, 2 * 4 * 8);
    }

    #[test]
    fn march_restores_array_contents() {
        let mut r = rng();
        let w: Vec<f32> = (0..64).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let mut xbar = Crossbar::program(&w, 8, 8, &CrossbarConfig::ideal(), &mut r);
        let _ = march_test(&mut xbar, &BistConfig::default(), &mut r);
        assert_eq!(xbar.stored_logical_signs(), w);
    }

    #[test]
    fn shorts_and_opens_are_detected_and_classified() {
        let mut r = rng();
        let w = vec![1.0f32; 256];
        let config = CrossbarConfig {
            defect_rates: DefectRates { short: 0.05, open: 0.05, ..DefectRates::none() },
            read_noise: 0.02,
            ..CrossbarConfig::default()
        };
        let mut xbar = Crossbar::program(&w, 16, 16, &config, &mut r);
        let truth = xbar.defects().clone();
        assert!(truth.defect_count() > 5, "fixture needs defects");
        let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
        let rate = report.detection_rate(&truth, &[DefectKind::Short, DefectKind::Open]);
        assert!(rate >= 0.9, "hard faults have unmistakable signatures, got {rate}");
        // Classification (not just detection) should also be right for
        // most shorts: nothing else reads back at ~83×.
        for ((row, col), kind) in &truth {
            if kind == DefectKind::Short {
                assert_eq!(report.estimated.defect_at(row, col), Some(DefectKind::Short));
            }
        }
    }

    #[test]
    fn stuck_at_cells_are_flagged_via_double_polarity() {
        let mut r = rng();
        let w = vec![1.0f32; 100];
        let config = CrossbarConfig {
            defect_rates: DefectRates {
                stuck_parallel: 0.05,
                stuck_antiparallel: 0.05,
                ..DefectRates::none()
            },
            read_noise: 0.01,
            ..CrossbarConfig::default()
        };
        let mut xbar = Crossbar::program(&w, 10, 10, &config, &mut r);
        let truth = xbar.defects().clone();
        assert!(truth.defect_count() > 0, "fixture needs defects");
        let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
        let rate = report.detection_rate(
            &truth,
            &[DefectKind::StuckParallel, DefectKind::StuckAntiParallel],
        );
        assert!(rate >= 0.9, "stuck-at escapes one polarity but not both, got {rate}");
    }

    #[test]
    fn confusion_tracks_march_quality() {
        let mut r = rng();
        let w = vec![1.0f32; 256];
        let config = CrossbarConfig {
            defect_rates: DefectRates { short: 0.04, open: 0.04, ..DefectRates::none() },
            read_noise: 0.02,
            ..CrossbarConfig::default()
        };
        let mut xbar = Crossbar::program(&w, 16, 16, &config, &mut r);
        let truth = xbar.defects().clone();
        assert!(truth.defect_count() > 5, "fixture needs defects");
        let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
        let c = report.confusion(&truth);
        assert!(c.detection_rate() >= 0.9, "hard faults nearly all caught: {c:?}");
        let accounted =
            c.total_detected() + c.total_misclassified() + c.total_missed();
        assert_eq!(accounted, truth.defect_count(), "every true defect is accounted for");
        assert_eq!(
            c.total_detected() + c.total_misclassified() + c.total_false_positives(),
            report.flagged(),
            "every flag is accounted for"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut r = StdRng::seed_from_u64(777);
            let w = vec![1.0f32; 144];
            let config = CrossbarConfig {
                defect_rates: DefectRates::uniform(0.02),
                read_noise: 0.05,
                ..CrossbarConfig::default()
            };
            let mut xbar = Crossbar::program(&w, 12, 12, &config, &mut r);
            let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
            report.estimated.iter().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heavy_read_noise_causes_misclassification_not_crash() {
        let mut r = rng();
        let w = vec![1.0f32; 400];
        let config = CrossbarConfig { read_noise: 0.5, ..CrossbarConfig::default() };
        let mut xbar = Crossbar::program(&w, 20, 20, &config, &mut r);
        let report = march_test(&mut xbar, &BistConfig::default(), &mut r);
        // With 50 % read noise some healthy cells WILL be flagged —
        // that is the modeled estimation error.
        assert!(report.flagged() > 0, "noise this heavy must cause false positives");
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let mut r = rng();
        let w = vec![1.0f32; 4];
        let mut xbar = Crossbar::program(&w, 2, 2, &CrossbarConfig::ideal(), &mut r);
        let _ = march_test(&mut xbar, &BistConfig { passes: 0, ..BistConfig::default() }, &mut r);
    }
}
