//! Per-method hardware profiles and the Table I energy estimator.
//!
//! Each NeuSpin method came from a different publication with its own
//! Monte-Carlo budget and stochastic-unit design. The profile captures
//! those choices; the estimator multiplies them against a network spec.
//!
//! | Method | passes T | RNG bits / pass | extra |
//! |---|---|---|---|
//! | SpinDrop | 100 | one per activation | — |
//! | Spatial-SpinDrop | 100 | one per feature map | — |
//! | SpinScaleDrop | 20 | one per layer | scale SRAM reads |
//! | Sub-set VI | 25 | 4 per scale entry (gaussian) | 2× scale SRAM |
//! | SpinBayes | 30 | ⌈log₂ N⌉ per layer | MLC read factor |

use crate::model::{EnergyBreakdown, EnergyModel, Joules};
use crate::network::NetworkSpec;
use neuspin_bayes::Method;
use neuspin_cim::OpCounter;

/// The hardware/sampling profile of one method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodProfile {
    /// Monte-Carlo passes per prediction (that publication's setting).
    pub passes: usize,
    /// RNG bits per layer-pass: multiplier selects the unit below.
    pub rng_unit: RngUnit,
    /// SRAM words touched per pass per scale entry (0 when the method
    /// has no scale memory).
    pub sram_words_per_scale: usize,
    /// Relative cell-read energy factor (multi-level cells sense
    /// several MTJs per cell).
    pub read_factor: f64,
    /// Crossbars per layer (sub-set VI adds a scale crossbar).
    pub crossbars_per_layer: f64,
}

/// What one RNG decision covers for a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngUnit {
    /// No stochastic unit (deterministic baseline).
    None,
    /// One Bernoulli bit per activation (SpinDrop / MC-Dropout).
    PerActivation,
    /// One bit per *weight* (MC-DropConnect — the worst-case baseline
    /// the paper's module-count discussion starts from, §II-D).
    PerWeight,
    /// One bit per feature map / channel group (Spatial-SpinDrop).
    PerChannel,
    /// One bit per layer (SpinScaleDrop).
    PerLayer,
    /// `bits` stochastic bits per scale entry (gaussian sampling for
    /// sub-set VI).
    PerScaleEntry {
        /// Bits per gaussian sample.
        bits: u32,
    },
    /// `⌈log₂ instances⌉` bits per layer (the SpinBayes arbiter).
    ArbiterPerLayer {
        /// Posterior instances per layer.
        instances: u32,
    },
}

impl MethodProfile {
    /// The profile of a method, with sampling budgets taken from the
    /// respective publications.
    pub fn of(method: Method) -> Self {
        match method {
            Method::Deterministic => Self {
                passes: 1,
                rng_unit: RngUnit::None,
                sram_words_per_scale: 0,
                read_factor: 1.0,
                crossbars_per_layer: 1.0,
            },
            Method::SpinDrop => Self {
                passes: 100,
                rng_unit: RngUnit::PerActivation,
                sram_words_per_scale: 0,
                read_factor: 1.0,
                crossbars_per_layer: 1.0,
            },
            Method::SpatialSpinDrop => Self {
                passes: 100,
                rng_unit: RngUnit::PerChannel,
                sram_words_per_scale: 0,
                read_factor: 1.0,
                crossbars_per_layer: 1.0,
            },
            Method::SpinScaleDrop => Self {
                passes: 20,
                rng_unit: RngUnit::PerLayer,
                sram_words_per_scale: 1,
                read_factor: 1.0,
                crossbars_per_layer: 1.0,
            },
            Method::AffineDropout => Self {
                passes: 20,
                rng_unit: RngUnit::PerLayer, // two scalar masks ≈ 2 bits; PerLayer×2 below
                sram_words_per_scale: 2,     // γ and β reads
                read_factor: 1.0,
                crossbars_per_layer: 1.0,
            },
            Method::SubsetVi => Self {
                passes: 25,
                rng_unit: RngUnit::PerScaleEntry { bits: 4 },
                sram_words_per_scale: 2, // μ and σ
                read_factor: 1.0,
                crossbars_per_layer: 1.1, // small scale crossbar beside the weights
            },
            Method::SpinBayes => Self {
                passes: 30,
                rng_unit: RngUnit::ArbiterPerLayer { instances: 8 },
                sram_words_per_scale: 0,
                read_factor: 1.15, // multi-level cells sense stacked MTJs
                crossbars_per_layer: 1.0,
            },
        }
    }

    /// RNG bits for one forward pass of `spec`.
    pub fn rng_bits_per_pass(&self, spec: &NetworkSpec) -> u64 {
        match self.rng_unit {
            RngUnit::None => 0,
            RngUnit::PerActivation => spec.activations() as u64,
            RngUnit::PerWeight => spec.weights() as u64,
            RngUnit::PerChannel => spec.channels() as u64,
            RngUnit::PerLayer => spec.layers.len() as u64,
            RngUnit::PerScaleEntry { bits } => (spec.channels() as u64) * u64::from(bits),
            RngUnit::ArbiterPerLayer { instances } => {
                let bits = (u32::BITS - (instances.max(2) - 1).leading_zeros()) as u64;
                spec.layers.len() as u64 * bits
            }
        }
    }
}

/// A full per-method energy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyEstimate {
    /// The method estimated.
    pub method: Method,
    /// The profile used.
    pub profile: MethodProfile,
    /// Op counts for one *prediction* (all `passes` MC passes of one
    /// image).
    pub counter: OpCounter,
    /// Per-category energy.
    pub breakdown: EnergyBreakdown,
    /// Energy per image (per full Bayesian prediction).
    pub per_image: Joules,
}

/// Estimates the per-image inference energy of `method` on `spec`
/// using the default [`EnergyModel`].
pub fn estimate_method_energy(spec: &NetworkSpec, method: Method) -> EnergyEstimate {
    estimate_with_model(spec, method, &EnergyModel::default())
}

/// Estimates with an explicit energy model (for sensitivity sweeps).
pub fn estimate_with_model(
    spec: &NetworkSpec,
    method: Method,
    model: &EnergyModel,
) -> EnergyEstimate {
    let profile = MethodProfile::of(method);
    let t = profile.passes as u64;
    let reads =
        (spec.cell_reads_per_pass() as f64 * profile.crossbars_per_layer * profile.read_factor)
            as u64;
    let cols = spec.column_evals_per_pass();
    let counter = OpCounter {
        cell_reads: reads * t,
        cell_writes: 0, // programming is amortized over the device lifetime
        sa_evals: cols * t,
        adc_converts: cols * t,
        adc_saturations: 0, // analytic profile assumes in-range columns
        rng_bits: profile.rng_bits_per_pass(spec) * t,
        sram_accesses: (profile.sram_words_per_scale * spec.channels()) as u64 * t,
        digital_ops: cols * t,
    };
    let breakdown = model.breakdown(&counter);
    EnergyEstimate { method, profile, counter, breakdown, per_image: breakdown.total() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uj(method: Method) -> f64 {
        estimate_method_energy(&NetworkSpec::lenet_reference(), method).per_image.micro()
    }

    #[test]
    fn table1_band_spindrop() {
        let e = uj(Method::SpinDrop);
        assert!(e > 1.0 && e < 4.0, "SpinDrop ≈ 2 µJ/image band, got {e}");
    }

    #[test]
    fn table1_band_spatial() {
        let e = uj(Method::SpatialSpinDrop);
        assert!(e > 0.3 && e < 1.2, "Spatial ≈ 0.68 µJ band, got {e}");
    }

    #[test]
    fn table1_band_scaledrop() {
        let e = uj(Method::SpinScaleDrop);
        assert!(e > 0.05 && e < 0.4, "ScaleDrop ≈ 0.18 µJ band, got {e}");
    }

    #[test]
    fn table1_band_subset_vi() {
        let e = uj(Method::SubsetVi);
        assert!(e > 0.1 && e < 0.6, "Sub-set VI ≈ 0.30 µJ band, got {e}");
    }

    #[test]
    fn table1_band_spinbayes() {
        let e = uj(Method::SpinBayes);
        assert!(e > 0.1 && e < 0.5, "SpinBayes ≈ 0.26 µJ band, got {e}");
    }

    #[test]
    fn table1_ordering_matches_paper() {
        let sd = uj(Method::SpinDrop);
        let sp = uj(Method::SpatialSpinDrop);
        let sc = uj(Method::SpinScaleDrop);
        let vi = uj(Method::SubsetVi);
        let sb = uj(Method::SpinBayes);
        assert!(sd > sp && sp > vi && vi > sc, "{sd} {sp} {vi} {sc}");
        assert!(sb < sp, "SpinBayes cheaper than spatial dropout: {sb} vs {sp}");
    }

    #[test]
    fn spatial_energy_ratio_near_paper() {
        let ratio = uj(Method::SpinDrop) / uj(Method::SpatialSpinDrop);
        // Paper: 2.94×. Accept the right neighbourhood.
        assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn scaledrop_savings_over_100x_vs_per_neuron_at_equal_budget() {
        // The >100× claim compares stochastic-unit energy at equal T:
        // per-activation RNG vs one bit per layer.
        let spec = NetworkSpec::lenet_reference();
        let per_neuron = MethodProfile::of(Method::SpinDrop).rng_bits_per_pass(&spec);
        let per_layer = MethodProfile::of(Method::SpinScaleDrop).rng_bits_per_pass(&spec);
        let ratio = per_neuron as f64 / per_layer as f64;
        assert!(ratio > 100.0, "RNG-bit reduction {ratio}");
    }

    #[test]
    fn deterministic_single_pass_is_cheapest() {
        let det = uj(Method::Deterministic);
        for m in [Method::SpinDrop, Method::SpinScaleDrop, Method::SpinBayes] {
            assert!(det < uj(m), "{m} must cost more than one deterministic pass");
        }
    }

    #[test]
    fn dropconnect_profile_is_the_worst_case() {
        // Per-weight sampling dwarfs every NeuSpin design point.
        let spec = NetworkSpec::lenet_reference();
        let dropconnect = MethodProfile {
            rng_unit: RngUnit::PerWeight,
            ..MethodProfile::of(Method::SpinDrop)
        };
        let per_weight = dropconnect.rng_bits_per_pass(&spec);
        let per_neuron = MethodProfile::of(Method::SpinDrop).rng_bits_per_pass(&spec);
        assert_eq!(per_weight, spec.weights() as u64);
        assert!(per_weight > 9 * per_neuron, "{per_weight} vs {per_neuron}");
    }

    #[test]
    fn rng_bits_per_pass_units() {
        let spec = NetworkSpec::lenet_reference();
        let p = MethodProfile::of(Method::SpinBayes);
        // 5 layers × ⌈log₂ 8⌉ = 15 bits.
        assert_eq!(p.rng_bits_per_pass(&spec), 15);
        let p = MethodProfile::of(Method::SpinScaleDrop);
        assert_eq!(p.rng_bits_per_pass(&spec), 5);
    }
}
