//! Network specifications for analytic op counting.
//!
//! The energy estimates need, per layer: the crossbar geometry (rows ×
//! cols), how many spatial positions evaluate the crossbar per image,
//! and how many activations / feature maps the layer produces (the
//! dropout-module counts).


/// One mapped layer of a reference network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSpec {
    /// Crossbar input rows (`K·K·C_in` for convs, `in_features` for FC).
    pub rows: usize,
    /// Crossbar output columns (`C_out` / `out_features`).
    pub cols: usize,
    /// Crossbar evaluations per image (output spatial positions for
    /// convs, 1 for FC layers).
    pub positions: usize,
    /// Activations the layer outputs per image (`C_out·H_out·W_out` or
    /// `out_features`) — the per-neuron dropout module count.
    pub activations: usize,
    /// Feature maps / channel groups (`C_out`, or `out_features` for FC)
    /// — the spatial dropout module count.
    pub channels: usize,
}

impl LayerSpec {
    /// A convolution layer spec.
    pub fn conv(c_in: usize, c_out: usize, k: usize, out_side: usize) -> Self {
        Self {
            rows: c_in * k * k,
            cols: c_out,
            positions: out_side * out_side,
            activations: c_out * out_side * out_side,
            channels: c_out,
        }
    }

    /// A fully-connected layer spec.
    pub fn linear(in_features: usize, out_features: usize) -> Self {
        Self {
            rows: in_features,
            cols: out_features,
            positions: 1,
            activations: out_features,
            channels: out_features,
        }
    }

    /// Cell reads per image (one crossbar evaluation senses every cell
    /// of every active row).
    pub fn cell_reads(&self) -> u64 {
        (self.positions * self.rows * self.cols) as u64
    }

    /// Column evaluations per image (SA + ADC events).
    pub fn column_evals(&self) -> u64 {
        (self.positions * self.cols) as u64
    }

    /// Weight count.
    pub fn weights(&self) -> usize {
        self.rows * self.cols
    }
}

/// A full network specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Network name (for reports).
    pub name: String,
    /// Mapped layers in order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// The paper-scale reference network used for the Table I energy
    /// estimate: a LeNet-5-class CNN on 28×28 inputs
    /// (conv 1→6 k5, pool, conv 6→16 k5, pool, FC 256→120→84→10).
    pub fn lenet_reference() -> Self {
        Self {
            name: "LeNet-5 (28×28)".to_string(),
            layers: vec![
                LayerSpec::conv(1, 6, 5, 24),
                LayerSpec::conv(6, 16, 5, 8),
                LayerSpec::linear(256, 120),
                LayerSpec::linear(120, 84),
                LayerSpec::linear(84, 10),
            ],
        }
    }

    /// The small binary CNN actually trained in this reproduction
    /// (1→8 k3, pool, 8→16 k3, pool, FC 256→64→10 on 16×16 inputs).
    pub fn digit_cnn() -> Self {
        Self {
            name: "synth-digits CNN (16×16)".to_string(),
            layers: vec![
                LayerSpec::conv(1, 8, 3, 16),
                LayerSpec::conv(8, 16, 3, 8),
                LayerSpec::linear(256, 64),
                LayerSpec::linear(64, 10),
            ],
        }
    }

    /// Total weights.
    pub fn weights(&self) -> usize {
        self.layers.iter().map(LayerSpec::weights).sum()
    }

    /// Total activations per image.
    pub fn activations(&self) -> usize {
        self.layers.iter().map(|l| l.activations).sum()
    }

    /// Total channels / feature-map groups.
    pub fn channels(&self) -> usize {
        self.layers.iter().map(|l| l.channels).sum()
    }

    /// Cell reads per single forward pass.
    pub fn cell_reads_per_pass(&self) -> u64 {
        self.layers.iter().map(LayerSpec::cell_reads).sum()
    }

    /// Column evaluations per single forward pass.
    pub fn column_evals_per_pass(&self) -> u64 {
        self.layers.iter().map(LayerSpec::column_evals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_dimensions() {
        let spec = NetworkSpec::lenet_reference();
        assert_eq!(spec.layers.len(), 5);
        // conv1: 25 rows, 6 cols, 576 positions.
        assert_eq!(spec.layers[0].rows, 25);
        assert_eq!(spec.layers[0].positions, 576);
        // conv2: 150 rows.
        assert_eq!(spec.layers[1].rows, 150);
        // Weight total ≈ 44k (the 28×28 LeNet variant: fc1 sees 256).
        let w = spec.weights();
        assert!(w > 40_000 && w < 70_000, "weights {w}");
    }

    #[test]
    fn reads_per_pass_is_mac_count() {
        let spec = NetworkSpec::lenet_reference();
        let reads = spec.cell_reads_per_pass();
        // 576·25·6 + 64·150·16 + 256·120 + 120·84 + 84·10 = 282 496… ballpark.
        assert!(reads > 250_000 && reads < 320_000, "reads {reads}");
    }

    #[test]
    fn conv_spec_activation_math() {
        let l = LayerSpec::conv(6, 16, 5, 8);
        assert_eq!(l.activations, 16 * 64);
        assert_eq!(l.channels, 16);
        assert_eq!(l.cell_reads(), 64 * 150 * 16);
        assert_eq!(l.column_evals(), 64 * 16);
    }

    #[test]
    fn linear_spec() {
        let l = LayerSpec::linear(256, 120);
        assert_eq!(l.positions, 1);
        assert_eq!(l.cell_reads(), 256 * 120);
        assert_eq!(l.weights(), 30_720);
    }

    #[test]
    fn digit_cnn_matches_trained_arch() {
        let spec = NetworkSpec::digit_cnn();
        assert_eq!(spec.layers[2].rows, 256, "flatten feeds 16·4·4 features");
        assert_eq!(spec.layers[3].cols, 10);
    }
}
