//! # neuspin-energy — architecture-level energy, area, and memory model
//!
//! Converts the operation tallies of the CIM simulator (and analytic op
//! counts of paper-scale reference networks) into energy, area, and
//! memory figures — the machinery behind Table I's energy column and
//! the paper's headline ratios (2.94×, 9×, >100×, 70×, 158.7×).
//!
//! The absolute µJ numbers in Table I aggregate results from five
//! different publications with different networks and Monte-Carlo
//! budgets; this model therefore couples
//!
//! 1. shared per-event energy constants ([`neuspin_device::DeviceEnergy`],
//!    values from the MRAM/CIM literature),
//! 2. per-method hardware profiles ([`MethodProfile`]) capturing each
//!    paper's RNG mechanism, sampling budget `T`, and memory traffic,
//! 3. a paper-scale reference network ([`NetworkSpec::lenet_reference`])
//!    for the analytic Table I estimate.
//!
//! ## Example
//!
//! ```
//! use neuspin_energy::{estimate_method_energy, NetworkSpec};
//! use neuspin_bayes::Method;
//!
//! let spec = NetworkSpec::lenet_reference();
//! let spindrop = estimate_method_energy(&spec, Method::SpinDrop);
//! let spatial = estimate_method_energy(&spec, Method::SpatialSpinDrop);
//! // The paper's ordering: per-neuron dropout costs ~3× spatial dropout.
//! let ratio = spindrop.per_image.0 / spatial.per_image.0;
//! assert!(ratio > 2.0 && ratio < 4.0);
//! ```

pub mod area;
pub mod latency;
pub mod memory;
pub mod model;
pub mod network;
pub mod profile;

pub use area::{method_area, AreaModel};
pub use latency::{estimate_method_latency, LatencyModel, LatencyReport};
pub use memory::{memory_footprint, MemoryFootprint};
pub use model::{EnergyBreakdown, EnergyModel, Joules};
pub use network::{LayerSpec, NetworkSpec};
pub use profile::{estimate_method_energy, EnergyEstimate, MethodProfile};
