//! Storage-memory accounting — the source of the paper's 158.7× memory
//! claim for Bayesian sub-set parameter inference.

use crate::network::NetworkSpec;
use neuspin_bayes::Method;

/// Storage footprint of a method on a network, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bits storing the weights themselves.
    pub weight_bits: u64,
    /// Bits storing distribution parameters (means/variances per
    /// Bayesian unit) and scale vectors.
    pub bayesian_bits: u64,
}

impl MemoryFootprint {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.weight_bits + self.bayesian_bits
    }

    /// Total in kilobytes.
    pub fn kilobytes(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// Storage footprint of `method` on `spec`.
///
/// Conventions (matching the respective publications):
/// * binary methods store 1 bit per weight;
/// * FP32 baselines store 32 bits per weight;
/// * full VI stores two FP32 distribution parameters per *weight*;
/// * sub-set VI stores binary weights plus two FP32 parameters per
///   *scale entry*;
/// * deep-ensemble baselines store `E` FP32 copies (reference: E = 10);
/// * SpinBayes stores `N` quantized instances at `log₂(levels)` bits.
pub fn memory_footprint(spec: &NetworkSpec, method: Method) -> MemoryFootprint {
    let w = spec.weights() as u64;
    let scales = spec.channels() as u64;
    match method {
        Method::Deterministic => MemoryFootprint { weight_bits: w, bayesian_bits: 0 },
        Method::SpinDrop | Method::SpatialSpinDrop => {
            MemoryFootprint { weight_bits: w, bayesian_bits: 0 }
        }
        Method::SpinScaleDrop => {
            MemoryFootprint { weight_bits: w, bayesian_bits: scales * 32 }
        }
        Method::AffineDropout => {
            // γ and β per feature, FP32.
            MemoryFootprint { weight_bits: w, bayesian_bits: 2 * scales * 32 }
        }
        Method::SubsetVi => {
            // Binary weights + (μ, ρ) per scale entry.
            MemoryFootprint { weight_bits: w, bayesian_bits: 2 * scales * 32 }
        }
        Method::SpinBayes => {
            // 8 instances × 9 levels (⌈log₂ 9⌉ = 4 bits per cell... the
            // multi-value cell stores the level directly).
            let bits_per_cell = 4;
            MemoryFootprint { weight_bits: 8 * w * bits_per_cell, bayesian_bits: 0 }
        }
    }
}

/// Footprints of the "traditional" baselines the sub-set VI paper
/// compares against, in bits: `(full FP32 VI, deep ensemble of 10,
/// FP32 MC-Dropout)`.
pub fn traditional_baselines(spec: &NetworkSpec) -> (u64, u64, u64) {
    let w = spec.weights() as u64;
    let full_vi = 2 * w * 32; // μ and σ per weight, FP32
    let ensemble10 = 10 * w * 32;
    let mc_dropout_fp32 = w * 32;
    (full_vi, ensemble10, mc_dropout_fp32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_vi_vs_traditional_is_two_orders() {
        let spec = NetworkSpec::lenet_reference();
        let subset = memory_footprint(&spec, Method::SubsetVi).total_bits();
        let (full_vi, ensemble10, _) = traditional_baselines(&spec);
        let vs_vi = full_vi as f64 / subset as f64;
        let vs_ens = ensemble10 as f64 / subset as f64;
        // Paper: 158.7× lower storage vs traditional methods.
        assert!(vs_vi > 30.0, "vs full VI: {vs_vi}");
        assert!(vs_ens > 100.0 && vs_ens < 350.0, "vs ensemble-10: {vs_ens}");
    }

    #[test]
    fn binary_methods_are_32x_below_fp32() {
        let spec = NetworkSpec::lenet_reference();
        let binary = memory_footprint(&spec, Method::SpinDrop).total_bits();
        let (_, _, fp32) = traditional_baselines(&spec);
        assert_eq!(fp32 / binary, 32);
    }

    #[test]
    fn scale_overhead_is_small() {
        let spec = NetworkSpec::lenet_reference();
        let plain = memory_footprint(&spec, Method::SpinDrop);
        let scaled = memory_footprint(&spec, Method::SpinScaleDrop);
        let overhead = scaled.bayesian_bits as f64 / plain.weight_bits as f64;
        assert!(overhead < 0.5, "scale vector must be cheap: {overhead}");
    }

    #[test]
    fn spinbayes_pays_for_instances() {
        let spec = NetworkSpec::lenet_reference();
        let sb = memory_footprint(&spec, Method::SpinBayes);
        let binary = memory_footprint(&spec, Method::Deterministic);
        assert!(sb.total_bits() > 8 * binary.total_bits());
        // But still far below a 10-ensemble of FP32 models.
        let (_, ensemble10, _) = traditional_baselines(&spec);
        assert!(sb.total_bits() < ensemble10 / 5);
    }

    #[test]
    fn kilobytes_conversion() {
        let f = MemoryFootprint { weight_bits: 8 * 1024 * 10, bayesian_bits: 0 };
        assert!((f.kilobytes() - 10.0).abs() < 1e-9);
    }
}
