//! Inference-latency model.
//!
//! §II-D calls out *sampling latency* as a core MC-Dropout problem: the
//! sheer number of dropout modules means a long serial stream of
//! SET→read→RESET cycles per forward pass (modules are shared across
//! neurons, so bits are generated sequentially per bank). This model
//! counts cycles the same way the energy model counts events.

use crate::network::NetworkSpec;
use crate::profile::MethodProfile;
use neuspin_bayes::Method;

/// Timing constants of the CIM macro, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// One crossbar evaluation (all rows in parallel, analog settle +
    /// sense).
    pub t_crossbar_eval: f64,
    /// One ADC conversion.
    pub t_adc: f64,
    /// Columns sharing one ADC (conversions serialize per group).
    pub adc_mux: usize,
    /// One stochastic RNG bit (SET pulse + sense + RESET pulse).
    pub t_rng_bit: f64,
    /// Parallel RNG banks generating bits concurrently.
    pub rng_banks: usize,
    /// Digital pipeline clock period (accumulate, norm, activation).
    pub t_digital: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            t_crossbar_eval: 20e-9,
            t_adc: 10e-9,
            adc_mux: 8,
            t_rng_bit: 30e-9, // 10 ns SET + 10 ns read + 10 ns RESET
            // Area forces heavy time-multiplexing of the stochastic
            // modules; 8 concurrent banks is the reuse level the
            // SpinDrop-era designs assume — the root of the paper's
            // "sampling latency" concern (§II-D).
            rng_banks: 8,
            t_digital: 1e-9,
        }
    }
}

/// Per-image latency breakdown, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Crossbar evaluation time across all layers and passes.
    pub crossbar: f64,
    /// ADC conversion time (serialized per mux group).
    pub adc: f64,
    /// RNG bit-stream generation time (serialized per bank).
    pub rng: f64,
    /// Monte-Carlo passes included.
    pub passes: usize,
}

impl LatencyReport {
    /// Total per-image latency (pipeline stages overlap is *not*
    /// assumed — a conservative sequential bound).
    pub fn total(&self) -> f64 {
        self.crossbar + self.adc + self.rng
    }
}

/// Estimates the per-image inference latency of `method` on `spec`.
pub fn estimate_method_latency(
    spec: &NetworkSpec,
    method: Method,
    model: &LatencyModel,
) -> LatencyReport {
    let profile = MethodProfile::of(method);
    let t = profile.passes as f64;
    // Crossbar evaluations: one per output position per layer.
    let evals: f64 = spec.layers.iter().map(|l| l.positions as f64).sum();
    let crossbar = evals * model.t_crossbar_eval * t;
    // ADC: column evaluations serialized per mux group.
    let adc = spec
        .layers
        .iter()
        .map(|l| {
            let groups = l.cols.div_ceil(model.adc_mux).max(1) as f64;
            l.positions as f64 * groups * model.t_adc * model.adc_mux.min(l.cols) as f64
                / model.adc_mux as f64
        })
        .sum::<f64>()
        * t;
    // RNG bits serialized across banks.
    let bits = profile.rng_bits_per_pass(spec) as f64;
    let rng = (bits / model.rng_banks as f64).ceil() * model.t_rng_bit * t;
    LatencyReport { crossbar, adc, rng, passes: profile.passes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(method: Method) -> f64 {
        estimate_method_latency(&NetworkSpec::lenet_reference(), method, &LatencyModel::default())
            .total()
            * 1e3
    }

    #[test]
    fn sampling_latency_dominates_spindrop() {
        let spec = NetworkSpec::lenet_reference();
        let model = LatencyModel::default();
        let sd = estimate_method_latency(&spec, Method::SpinDrop, &model);
        assert!(
            sd.rng > sd.crossbar,
            "per-neuron sampling must dominate: rng {} vs xbar {}",
            sd.rng,
            sd.crossbar
        );
    }

    #[test]
    fn scaledrop_sampling_latency_is_negligible() {
        let spec = NetworkSpec::lenet_reference();
        let model = LatencyModel::default();
        let sc = estimate_method_latency(&spec, Method::SpinScaleDrop, &model);
        assert!(sc.rng < 0.01 * sc.crossbar, "rng {} vs xbar {}", sc.rng, sc.crossbar);
    }

    #[test]
    fn latency_ordering_follows_rng_hierarchy() {
        assert!(ms(Method::SpinDrop) > ms(Method::SpatialSpinDrop));
        assert!(ms(Method::SpatialSpinDrop) > ms(Method::SpinScaleDrop));
    }

    #[test]
    fn deterministic_single_pass_is_fastest() {
        for m in [Method::SpinDrop, Method::SpinScaleDrop, Method::SpinBayes] {
            assert!(ms(Method::Deterministic) < ms(m));
        }
    }

    #[test]
    fn totals_are_sub_second(){
        for m in Method::ALL {
            let t = ms(m);
            assert!(t > 0.0 && t < 1_000.0, "{m}: {t} ms");
        }
    }
}
