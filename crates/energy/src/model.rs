//! Energy bookkeeping: the [`Joules`] quantity and the counter → energy
//! mapping.

use neuspin_cim::OpCounter;
use neuspin_device::DeviceEnergy;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// An energy quantity in joules, displayed with an auto-scaled SI
/// prefix.
///
/// # Examples
///
/// ```
/// use neuspin_energy::Joules;
///
/// assert_eq!(Joules(2.0e-6).to_string(), "2.000 µJ");
/// assert_eq!(Joules(25e-15).to_string(), "25.000 fJ");
/// assert!(((Joules(1e-9) + Joules(2e-9)).0 - 3e-9).abs() < 1e-20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// The value expressed in microjoules.
    pub fn micro(self) -> f64 {
        self.0 * 1e6
    }

    /// The value expressed in nanojoules.
    pub fn nano(self) -> f64 {
        self.0 * 1e9
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0.abs();
        let (scaled, unit) = if v == 0.0 {
            (0.0, "J")
        } else if v < 1e-12 {
            (self.0 * 1e15, "fJ")
        } else if v < 1e-9 {
            (self.0 * 1e12, "pJ")
        } else if v < 1e-6 {
            (self.0 * 1e9, "nJ")
        } else if v < 1e-3 {
            (self.0 * 1e6, "µJ")
        } else {
            (self.0 * 1e3, "mJ")
        };
        write!(f, "{scaled:.3} {unit}")
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

/// Per-category energy breakdown of a counter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Crossbar cell sensing.
    pub reads: Joules,
    /// Device programming writes.
    pub writes: Joules,
    /// Sense amplifiers.
    pub sense_amps: Joules,
    /// Column ADCs.
    pub adcs: Joules,
    /// Stochastic-MTJ RNG bits.
    pub rng: Joules,
    /// SRAM traffic (scale vectors, arbiter state).
    pub sram: Joules,
    /// Digital accumulation.
    pub digital: Joules,
}

impl EnergyBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> Joules {
        self.reads + self.writes + self.sense_amps + self.adcs + self.rng + self.sram + self.digital
    }

    /// `(label, energy)` pairs in display order.
    pub fn entries(&self) -> [(&'static str, Joules); 7] {
        [
            ("cell reads", self.reads),
            ("cell writes", self.writes),
            ("sense amps", self.sense_amps),
            ("ADCs", self.adcs),
            ("RNG bits", self.rng),
            ("SRAM", self.sram),
            ("digital", self.digital),
        ]
    }
}

/// Maps [`OpCounter`] tallies to energy using per-event constants.
///
/// The stochastic-RNG bit cost deserves a note: generating one
/// calibrated Bernoulli bit takes a *sub-critical long-pulse* SET
/// attempt plus a read plus a deterministic RESET — substantially more
/// expensive than a nominal memory write. The SpinDrop-era literature
/// puts this at a few pJ per bit; [`EnergyModel::default`] uses 3.2 pJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Per-event device constants.
    pub device: DeviceEnergy,
    /// Energy per stochastic RNG bit (SET attempt + read + RESET with
    /// long sub-critical pulses), in joules.
    pub rng_bit: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self { device: DeviceEnergy::default(), rng_bit: 3.2e-12 }
    }
}

impl EnergyModel {
    /// Computes the per-category breakdown of a counter.
    pub fn breakdown(&self, c: &OpCounter) -> EnergyBreakdown {
        let d = &self.device;
        EnergyBreakdown {
            reads: Joules(c.cell_reads as f64 * d.read),
            writes: Joules(c.cell_writes as f64 * d.write_sot),
            sense_amps: Joules(c.sa_evals as f64 * d.sense_amp),
            adcs: Joules(c.adc_converts as f64 * d.adc_4bit),
            rng: Joules(c.rng_bits as f64 * self.rng_bit),
            sram: Joules(c.sram_accesses as f64 * d.sram_access),
            digital: Joules(c.digital_ops as f64 * d.digital_acc),
        }
    }

    /// Total energy of a counter.
    pub fn energy_of(&self, c: &OpCounter) -> Joules {
        self.breakdown(c).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_display_scales() {
        assert_eq!(Joules(0.0).to_string(), "0.000 J");
        assert_eq!(Joules(1.5e-12).to_string(), "1.500 pJ");
        assert_eq!(Joules(0.68e-6).to_string(), "680.000 nJ");
        assert_eq!(Joules(2e-6).to_string(), "2.000 µJ");
        assert_eq!(Joules(5e-3).to_string(), "5.000 mJ");
    }

    #[test]
    fn joules_arithmetic() {
        let total: Joules = [Joules(1e-9), Joules(2e-9), Joules(3e-9)].into_iter().sum();
        assert!((total.0 - 6e-9).abs() < 1e-20);
        assert!((total.micro() - 6e-3).abs() < 1e-12);
        let mut j = Joules(1e-9);
        j += Joules(1e-9);
        assert!((j.nano() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals_match() {
        let c = OpCounter {
            cell_reads: 1000,
            cell_writes: 10,
            sa_evals: 50,
            adc_converts: 50,
            adc_saturations: 0,
            rng_bits: 100,
            sram_accesses: 20,
            digital_ops: 50,
        };
        let m = EnergyModel::default();
        let b = m.breakdown(&c);
        let sum: Joules = b.entries().iter().map(|(_, j)| *j).sum();
        assert!((sum.0 - b.total().0).abs() < 1e-20);
        assert_eq!(m.energy_of(&c), b.total());
        // Reads: 1000 × 25 fJ = 25 pJ.
        assert!((b.reads.0 - 25e-12).abs() < 1e-18);
        // RNG dominates at 3.2 pJ/bit: 320 pJ.
        assert!((b.rng.0 - 320e-12).abs() < 1e-15);
    }

    #[test]
    fn empty_counter_is_free() {
        let m = EnergyModel::default();
        assert_eq!(m.energy_of(&OpCounter::new()).0, 0.0);
    }

    #[test]
    fn rng_bit_is_pricier_than_nominal_write() {
        let m = EnergyModel::default();
        assert!(m.rng_bit > 2.0 * m.device.write_sot);
    }
}
