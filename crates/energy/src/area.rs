//! Silicon-area estimates for the CIM macros and stochastic modules.
//!
//! Unit areas follow published MRAM macro data (bit-cell ≈ 0.05 µm² at
//! a 28 nm-class node; SAR ADCs dominate the periphery). The area story
//! behind Fig. 1: spatial dropout cuts the dropout-module *count* by
//! K², which shows up directly in periphery area.

use crate::network::NetworkSpec;
use neuspin_bayes::Method;

/// Unit areas in µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One differential binary bit-cell (two 1T-1MTJ).
    pub bitcell: f64,
    /// One sense amplifier.
    pub sense_amp: f64,
    /// One column ADC.
    pub adc: f64,
    /// One stochastic dropout/RNG module (MTJ + bias DAC + comparator).
    pub rng_module: f64,
    /// Word-line decoder per row.
    pub decoder_per_row: f64,
    /// SRAM bit.
    pub sram_bit: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            bitcell: 0.05,
            sense_amp: 15.0,
            adc: 400.0,
            rng_module: 60.0,
            decoder_per_row: 2.0,
            sram_bit: 0.12,
        }
    }
}

/// Area report for one method on one network, in µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Crossbar cell array.
    pub array: f64,
    /// Sense amps + ADCs + decoders.
    pub periphery: f64,
    /// Stochastic (dropout / arbiter) modules.
    pub stochastic: f64,
    /// Scale / distribution SRAM.
    pub sram: f64,
}

impl AreaReport {
    /// Total area in µm².
    pub fn total(&self) -> f64 {
        self.array + self.periphery + self.stochastic + self.sram
    }

    /// Total in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total() / 1e6
    }
}

/// Number of stochastic modules a method instantiates on a network.
pub fn stochastic_module_count(spec: &NetworkSpec, method: Method) -> usize {
    match method {
        Method::Deterministic => 0,
        Method::SpinDrop => spec.activations(),
        Method::SpatialSpinDrop => spec.channels(),
        Method::SpinScaleDrop => spec.layers.len(),
        Method::AffineDropout => 2 * spec.layers.len(),
        Method::SubsetVi => spec.channels(), // one gaussian sampler per scale entry
        Method::SpinBayes => 3 * spec.layers.len(), // ⌈log₂ 8⌉ bit sources per layer
    }
}

/// Estimates the silicon area of a method's accelerator instance.
pub fn method_area(spec: &NetworkSpec, method: Method, model: &AreaModel) -> AreaReport {
    let cells: f64 = spec.weights() as f64;
    let cols: f64 = spec.layers.iter().map(|l| l.cols as f64).sum();
    let rows: f64 = spec.layers.iter().map(|l| l.rows as f64).sum();
    let modules = stochastic_module_count(spec, method) as f64;
    let sram_bits = match method {
        Method::SpinScaleDrop => spec.channels() as f64 * 32.0,
        Method::AffineDropout | Method::SubsetVi => spec.channels() as f64 * 64.0,
        _ => 0.0,
    };
    let instance_factor = if method == Method::SpinBayes { 8.0 } else { 1.0 };
    AreaReport {
        array: cells * model.bitcell * instance_factor,
        periphery: cols * (model.sense_amp + model.adc) + rows * model.decoder_per_row,
        stochastic: modules * model.rng_module,
        sram: sram_bits * model.sram_bit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_counts_reproduce_9x_reduction() {
        // On a conv network with 3×3 kernels the per-activation →
        // per-channel reduction is H·W per map; the *module* count
        // reduction the paper quotes (9×) is per *crossbar row group* —
        // checked directly in neuspin-cim::mapping. Here: network-level
        // counts are strictly ordered.
        let spec = NetworkSpec::lenet_reference();
        let sd = stochastic_module_count(&spec, Method::SpinDrop);
        let sp = stochastic_module_count(&spec, Method::SpatialSpinDrop);
        let sc = stochastic_module_count(&spec, Method::SpinScaleDrop);
        assert!(sd > 10 * sp, "{sd} vs {sp}");
        assert!(sp > sc);
        assert_eq!(sc, 5);
    }

    #[test]
    fn stochastic_area_ordering() {
        let spec = NetworkSpec::lenet_reference();
        let m = AreaModel::default();
        let sd = method_area(&spec, Method::SpinDrop, &m);
        let sp = method_area(&spec, Method::SpatialSpinDrop, &m);
        let sc = method_area(&spec, Method::SpinScaleDrop, &m);
        assert!(sd.stochastic > sp.stochastic);
        assert!(sp.stochastic > sc.stochastic);
        // Array + periphery identical for the dropout family.
        assert!((sd.array - sp.array).abs() < 1e-9);
        assert!((sd.periphery - sp.periphery).abs() < 1e-9);
    }

    #[test]
    fn spindrop_stochastic_area_is_significant() {
        let spec = NetworkSpec::lenet_reference();
        let m = AreaModel::default();
        let sd = method_area(&spec, Method::SpinDrop, &m);
        assert!(
            sd.stochastic > sd.array,
            "per-neuron modules dwarf the (binary) array: {} vs {}",
            sd.stochastic,
            sd.array
        );
    }

    #[test]
    fn spinbayes_array_pays_8x() {
        let spec = NetworkSpec::lenet_reference();
        let m = AreaModel::default();
        let det = method_area(&spec, Method::Deterministic, &m);
        let sb = method_area(&spec, Method::SpinBayes, &m);
        assert!((sb.array / det.array - 8.0).abs() < 1e-9);
    }

    #[test]
    fn totals_are_positive_mm2_scale() {
        let spec = NetworkSpec::lenet_reference();
        let m = AreaModel::default();
        for method in Method::ALL {
            let a = method_area(&spec, method, &m);
            assert!(a.total() > 0.0);
            assert!(a.total_mm2() < 10.0, "{method}: {} mm²", a.total_mm2());
        }
    }
}
