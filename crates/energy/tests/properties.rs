//! Property-based invariants of the energy/area/memory models.

use neuspin_bayes::Method;
use neuspin_cim::OpCounter;
use neuspin_energy::{
    estimate_method_energy, estimate_method_latency, memory_footprint, method_area, AreaModel,
    EnergyModel, LatencyModel, LayerSpec, NetworkSpec,
};
use proptest::prelude::*;

fn arb_counter() -> impl Strategy<Value = OpCounter> {
    (
        0u64..1_000_000,
        0u64..1_000,
        0u64..10_000,
        0u64..10_000,
        0u64..100_000,
        0u64..10_000,
        0u64..10_000,
    )
        .prop_map(|(r, w, sa, adc, rng, sram, dig)| OpCounter {
            cell_reads: r,
            cell_writes: w,
            sa_evals: sa,
            adc_converts: adc,
            rng_bits: rng,
            sram_accesses: sram,
            digital_ops: dig,
        })
}

fn arb_spec() -> impl Strategy<Value = NetworkSpec> {
    proptest::collection::vec((1usize..32, 1usize..32, 1usize..5), 1..5).prop_map(|layers| {
        NetworkSpec {
            name: "arb".to_string(),
            layers: layers
                .into_iter()
                .map(|(cin, cout, k)| LayerSpec::conv(cin, cout, k, 8))
                .collect(),
        }
    })
}

proptest! {
    #[test]
    fn energy_is_additive_over_counters(a in arb_counter(), b in arb_counter()) {
        let model = EnergyModel::default();
        let mut merged = a;
        merged.merge(&b);
        let sum = model.energy_of(&a).0 + model.energy_of(&b).0;
        prop_assert!((model.energy_of(&merged).0 - sum).abs() < 1e-18 * (1.0 + sum.abs()));
    }

    #[test]
    fn energy_is_monotone_in_counts(a in arb_counter(), extra in arb_counter()) {
        let model = EnergyModel::default();
        let mut bigger = a;
        bigger.merge(&extra);
        prop_assert!(model.energy_of(&bigger).0 >= model.energy_of(&a).0);
    }

    #[test]
    fn breakdown_totals_consistent(c in arb_counter()) {
        let model = EnergyModel::default();
        let b = model.breakdown(&c);
        let entries: f64 = b.entries().iter().map(|(_, j)| j.0).sum();
        prop_assert!((entries - b.total().0).abs() < 1e-18 * (1.0 + entries));
    }

    #[test]
    fn method_estimates_positive_and_finite(spec in arb_spec()) {
        for method in Method::ALL {
            let e = estimate_method_energy(&spec, method);
            prop_assert!(e.per_image.0.is_finite());
            prop_assert!(e.per_image.0 > 0.0);
        }
    }

    #[test]
    fn bayesian_methods_cost_more_than_deterministic(spec in arb_spec()) {
        let det = estimate_method_energy(&spec, Method::Deterministic).per_image.0;
        for method in Method::ALL {
            if method.is_bayesian() {
                prop_assert!(
                    estimate_method_energy(&spec, method).per_image.0 > det,
                    "{method}"
                );
            }
        }
    }

    #[test]
    fn memory_footprints_positive(spec in arb_spec()) {
        for method in Method::ALL {
            let m = memory_footprint(&spec, method);
            prop_assert!(m.total_bits() > 0);
            prop_assert!(m.kilobytes() > 0.0);
        }
    }

    #[test]
    fn area_reports_finite_positive(spec in arb_spec()) {
        let model = AreaModel::default();
        for method in Method::ALL {
            let a = method_area(&spec, method, &model);
            prop_assert!(a.total().is_finite() && a.total() > 0.0, "{method}");
        }
    }

    #[test]
    fn latency_totals_scale_with_passes(spec in arb_spec()) {
        let model = LatencyModel::default();
        let det = estimate_method_latency(&spec, Method::Deterministic, &model);
        let sd = estimate_method_latency(&spec, Method::SpinDrop, &model);
        // 100 passes vs 1 pass: at least 50× the crossbar time.
        prop_assert!(sd.crossbar > 50.0 * det.crossbar);
    }
}
