//! Property-based invariants of the energy/area/memory models.
//!
//! Formerly `proptest!` suites; now deterministic seeded loops over the
//! vendored RNG. Every case's generator is derived from `BASE`, the
//! property's id, and the case index, so any failure names the exact
//! seed that reproduces it.

use neuspin_bayes::Method;
use neuspin_cim::OpCounter;
use neuspin_energy::{
    estimate_method_energy, estimate_method_latency, memory_footprint, method_area, AreaModel,
    EnergyModel, LatencyModel, LayerSpec, NetworkSpec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0xE4E2_0004;

/// Sampled cases per property.
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(case_seed(property, case))
}

/// Mirrors the old proptest `arb_counter` strategy.
fn arb_counter(rng: &mut StdRng) -> OpCounter {
    OpCounter {
        cell_reads: rng.random_range(0u64..1_000_000),
        cell_writes: rng.random_range(0u64..1_000),
        sa_evals: rng.random_range(0u64..10_000),
        adc_converts: rng.random_range(0u64..10_000),
        // Kept zero so the draw schedule (and every seeded golden value
        // downstream) is unchanged; saturations carry no energy anyway.
        adc_saturations: 0,
        rng_bits: rng.random_range(0u64..100_000),
        sram_accesses: rng.random_range(0u64..10_000),
        digital_ops: rng.random_range(0u64..10_000),
    }
}

/// Mirrors the old proptest `arb_spec` strategy: 1–4 conv layers with
/// channel counts in [1, 32) and kernels in [1, 5).
fn arb_spec(rng: &mut StdRng) -> NetworkSpec {
    let n_layers = rng.random_range(1usize..5);
    NetworkSpec {
        name: "arb".to_string(),
        layers: (0..n_layers)
            .map(|_| {
                let cin = rng.random_range(1usize..32);
                let cout = rng.random_range(1usize..32);
                let k = rng.random_range(1usize..5);
                LayerSpec::conv(cin, cout, k, 8)
            })
            .collect(),
    }
}

#[test]
fn energy_is_additive_over_counters() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let a = arb_counter(&mut rng);
        let b = arb_counter(&mut rng);
        let model = EnergyModel::default();
        let mut merged = a;
        merged.merge(&b);
        let sum = model.energy_of(&a).0 + model.energy_of(&b).0;
        assert!(
            (model.energy_of(&merged).0 - sum).abs() < 1e-18 * (1.0 + sum.abs()),
            "seed {:#x}",
            case_seed(1, case)
        );
    }
}

#[test]
fn energy_is_monotone_in_counts() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = arb_counter(&mut rng);
        let extra = arb_counter(&mut rng);
        let model = EnergyModel::default();
        let mut bigger = a;
        bigger.merge(&extra);
        assert!(
            model.energy_of(&bigger).0 >= model.energy_of(&a).0,
            "seed {:#x}",
            case_seed(2, case)
        );
    }
}

#[test]
fn breakdown_totals_consistent() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let c = arb_counter(&mut rng);
        let model = EnergyModel::default();
        let b = model.breakdown(&c);
        let entries: f64 = b.entries().iter().map(|(_, j)| j.0).sum();
        assert!(
            (entries - b.total().0).abs() < 1e-18 * (1.0 + entries),
            "seed {:#x}",
            case_seed(3, case)
        );
    }
}

#[test]
fn method_estimates_positive_and_finite() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let spec = arb_spec(&mut rng);
        for method in Method::ALL {
            let e = estimate_method_energy(&spec, method);
            let seed = case_seed(4, case);
            assert!(e.per_image.0.is_finite(), "seed {seed:#x}: {method}");
            assert!(e.per_image.0 > 0.0, "seed {seed:#x}: {method}");
        }
    }
}

#[test]
fn bayesian_methods_cost_more_than_deterministic() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let spec = arb_spec(&mut rng);
        let det = estimate_method_energy(&spec, Method::Deterministic).per_image.0;
        for method in Method::ALL {
            if method.is_bayesian() {
                assert!(
                    estimate_method_energy(&spec, method).per_image.0 > det,
                    "seed {:#x}: {method}",
                    case_seed(5, case)
                );
            }
        }
    }
}

#[test]
fn memory_footprints_positive() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let spec = arb_spec(&mut rng);
        for method in Method::ALL {
            let m = memory_footprint(&spec, method);
            let seed = case_seed(6, case);
            assert!(m.total_bits() > 0, "seed {seed:#x}: {method}");
            assert!(m.kilobytes() > 0.0, "seed {seed:#x}: {method}");
        }
    }
}

#[test]
fn area_reports_finite_positive() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let spec = arb_spec(&mut rng);
        let model = AreaModel::default();
        for method in Method::ALL {
            let a = method_area(&spec, method, &model);
            assert!(
                a.total().is_finite() && a.total() > 0.0,
                "seed {:#x}: {method}",
                case_seed(7, case)
            );
        }
    }
}

#[test]
fn latency_totals_scale_with_passes() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let spec = arb_spec(&mut rng);
        let model = LatencyModel::default();
        let det = estimate_method_latency(&spec, Method::Deterministic, &model);
        let sd = estimate_method_latency(&spec, Method::SpinDrop, &model);
        // 100 passes vs 1 pass: at least 50× the crossbar time.
        assert!(
            sd.crossbar > 50.0 * det.crossbar,
            "seed {:#x}: {} vs {}",
            case_seed(8, case),
            sd.crossbar,
            det.crossbar
        );
    }
}
