//! End-to-end integration: train in software → compile to hardware →
//! calibrate → hardware-in-the-loop Bayesian prediction.

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::cim::CrossbarConfig;
use neuspin::core::{HardwareConfig, HardwareModel};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::nn::{fit, Adam, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_arch() -> ArchConfig {
    ArchConfig { c1: 4, c2: 8, hidden: 32, ..ArchConfig::default() }
}

fn quick_style() -> DigitStyle {
    DigitStyle::easy()
}

fn train_model(method: Method, rng: &mut StdRng) -> neuspin::nn::Sequential {
    let train = dataset(1_200, &quick_style(), rng);
    let mut model = build_cnn(method, &tiny_arch(), rng);
    let mut opt = Adam::new(0.004);
    let cfg = TrainConfig { epochs: 6, batch_size: 64, ..Default::default() };
    fit(&mut model, &train, &mut opt, &cfg, rng);
    model
}

fn hw_config(passes: usize) -> HardwareConfig {
    HardwareConfig {
        crossbar: CrossbarConfig::ideal(),
        passes,
        ..HardwareConfig::default()
    }
}

#[test]
fn spindrop_full_pipeline_reaches_usable_accuracy() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = train_model(Method::SpinDrop, &mut rng);
    let arch = tiny_arch();
    let calib = dataset(128, &quick_style(), &mut rng);
    let test = dataset(120, &quick_style(), &mut rng);

    let mut hw = HardwareModel::compile(&mut model, Method::SpinDrop, &arch, &hw_config(6), &mut rng);
    hw.calibrate(&calib.inputs, 2, &mut rng);
    let pred = hw.predict(&test.inputs, &mut rng);
    let acc = pred.accuracy(&test.labels);
    assert!(acc > 0.6, "hardware accuracy too low: {acc}");
    assert!(hw.counter().cell_reads > 0);
    assert!(hw.counter().rng_bits > 0, "SpinDrop must consume RNG bits");
}

#[test]
fn every_method_compiles_and_predicts() {
    let arch = tiny_arch();
    for method in Method::ALL {
        let mut rng = StdRng::seed_from_u64(2);
        // SpinBayes compiles from a deterministic backbone.
        let base = if method == Method::SpinBayes { Method::Deterministic } else { method };
        let mut model = train_model(base, &mut rng);
        let calib = dataset(64, &quick_style(), &mut rng);
        let test = dataset(60, &quick_style(), &mut rng);
        let mut hw = HardwareModel::compile(&mut model, method, &arch, &hw_config(4), &mut rng);
        hw.calibrate(&calib.inputs, 2, &mut rng);
        let pred = hw.predict(&test.inputs, &mut rng);
        let acc = pred.accuracy(&test.labels);
        assert!(acc > 0.4, "{method}: hardware accuracy collapsed to {acc}");
        assert!(pred.mean_probs.all_finite(), "{method}");
    }
}

#[test]
fn hardware_energy_ordering_spindrop_vs_scaledrop() {
    // At equal MC budget, per-neuron RNG must cost more than one bit
    // per layer — the core of the paper's energy story, measured on
    // the actual simulated hardware rather than the analytic model.
    let arch = tiny_arch();
    let mut energy = Vec::new();
    for method in [Method::SpinDrop, Method::SpinScaleDrop] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = train_model(method, &mut rng);
        let test = dataset(30, &quick_style(), &mut rng);
        let mut hw = HardwareModel::compile(&mut model, method, &arch, &hw_config(6), &mut rng);
        hw.calibrate(&test.inputs, 1, &mut rng);
        hw.reset_counter();
        let _ = hw.predict(&test.inputs, &mut rng);
        energy.push(hw.energy().0);
    }
    assert!(
        energy[0] > energy[1],
        "SpinDrop ({}) must out-cost ScaleDrop ({})",
        energy[0],
        energy[1]
    );
}

#[test]
fn variation_degrades_hardware_less_than_catastrophically() {
    // A realistic corner with variation + ADC must not destroy accuracy
    // (the robustness takeaway of the paper).
    let mut rng = StdRng::seed_from_u64(4);
    let arch = tiny_arch();
    let mut model = train_model(Method::SpatialSpinDrop, &mut rng);
    let calib = dataset(128, &quick_style(), &mut rng);
    let test = dataset(120, &quick_style(), &mut rng);

    let mut config = hw_config(6);
    config.crossbar = CrossbarConfig {
        corner: neuspin::device::VariedParams::new(
            neuspin::device::MtjParams::default(),
            neuspin::device::VariationModel::typical(),
        ),
        read_noise: 0.02,
        adc_bits: Some(6),
        ..CrossbarConfig::default()
    };
    let mut hw =
        HardwareModel::compile(&mut model, Method::SpatialSpinDrop, &arch, &config, &mut rng);
    hw.calibrate(&calib.inputs, 2, &mut rng);
    let pred = hw.predict(&test.inputs, &mut rng);
    let acc = pred.accuracy(&test.labels);
    assert!(acc > 0.55, "typical-corner hardware accuracy: {acc}");
}
