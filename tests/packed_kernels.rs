//! E2E acceptance for the bit-packed XNOR/popcount crossbar kernel.
//!
//! The contract under test: on a *noiseless* fault-managed SpinDrop
//! CNN fed binarized ±1 images, the packed kernel engages on the
//! binary-input layers (conv-1 sees ternary im2col patches; deeper
//! layers fall back per call on their continuous HardTanh activations)
//! and the model's `Predictive` is **bit-identical** across all three
//! [`KernelPolicy`] routings, across worker counts, and with telemetry
//! tracing on or off. Op counters and sense-margin statistics must
//! agree exactly between policies too — kernel selection is a speed
//! knob, never a semantics knob.

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::cim::{BistConfig, CrossbarConfig, KernelPolicy};
use neuspin::core::{reliability_base, HardwareConfig, HardwareModel, ThreadPool};
use neuspin::device::DefectRates;
use neuspin::nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PASSES: usize = 6;
const SEED: u64 = 0xB17_ACC;

/// The noiseless E2E model: a SpinDrop CNN on ideal-corner crossbars
/// with stuck-at defects (ternary effective weights), 6-bit ADCs, no
/// read noise, no IR drop — the regime the packed kernel targets —
/// taken through BIST + repair + remap and calibration. Deterministic:
/// two calls build bit-identical models.
fn noiseless_model() -> HardwareModel {
    let arch = ArchConfig { c1: 4, c2: 8, hidden: 16, ..ArchConfig::default() };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut sw = build_cnn(Method::SpinDrop, &arch, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig {
            defect_rates: DefectRates {
                stuck_parallel: 0.01,
                stuck_antiparallel: 0.01,
                ..DefectRates::none()
            },
            read_noise: 0.0,
            adc_bits: Some(6),
            ir_drop: 0.0,
            ..CrossbarConfig::ideal()
        },
        spare_cols: 4,
        passes: PASSES,
        ..reliability_base()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &arch, &config, &mut rng);
    hw.fault_management(&BistConfig::default(), &mut StdRng::seed_from_u64(SEED ^ 1));
    hw.calibrate(&binary_inputs(12, 3), 2, &mut StdRng::seed_from_u64(SEED ^ 2));
    hw
}

/// A deterministic batch of binarized ±1 images (the SpinDrop input
/// convention: sign-quantized pixels on the word lines).
fn binary_inputs(n: usize, tag: usize) -> Tensor {
    Tensor::from_fn(&[n, 1, 16, 16], |i| if (i * 31 + tag * 7) % 5 < 2 { 1.0 } else { -1.0 })
}

#[test]
fn packed_scalar_and_reference_predictions_are_bit_identical() {
    // Twin dies from the same seeds, one per policy: predictions,
    // merged op counters, and sense-margin statistics must all match
    // exactly (sequential evaluation — no reassociation anywhere).
    let x = binary_inputs(6, 0);
    let mut auto = noiseless_model();
    let mut scalar = noiseless_model();
    let mut reference = noiseless_model();
    scalar.set_kernel_policy(KernelPolicy::Scalar);
    reference.set_kernel_policy(KernelPolicy::Reference);
    for hw in [&mut auto, &mut scalar, &mut reference] {
        hw.reset_counter();
        hw.reset_sense_margins();
    }
    // `packed_call_count` is monotonic since programming (compile and
    // calibration already ran under the default Auto policy), so
    // engagement during the predictions below is measured as a delta.
    let auto_before = auto.packed_call_count();
    let scalar_before = scalar.packed_call_count();
    let reference_before = reference.packed_call_count();
    let pa = auto.predict_seeded(&x, 0xD15E);
    let ps = scalar.predict_seeded(&x, 0xD15E);
    let pr = reference.predict_seeded(&x, 0xD15E);
    assert_eq!(pa, ps, "auto (packed) vs scalar predictions");
    assert_eq!(pa, pr, "auto (packed) vs reference predictions");
    assert_eq!(auto.counter(), scalar.counter(), "auto vs scalar op counters");
    assert_eq!(auto.counter(), reference.counter(), "auto vs reference op counters");
    let (ma, ms, mr) = (
        auto.mean_sense_margin(),
        scalar.mean_sense_margin(),
        reference.mean_sense_margin(),
    );
    assert_eq!(ma.to_bits(), ms.to_bits(), "auto vs scalar sense margins");
    assert_eq!(ma.to_bits(), mr.to_bits(), "auto vs reference sense margins");
    // The fast path must actually have served the binary layers — this
    // is the engagement proof, not just an equivalence vacuously
    // satisfied by universal fallback.
    assert!(
        auto.packed_call_count() > auto_before,
        "packed kernel never engaged on the binarized model"
    );
    assert_eq!(
        scalar.packed_call_count(),
        scalar_before,
        "scalar policy must never route packed"
    );
    assert_eq!(
        reference.packed_call_count(),
        reference_before,
        "reference policy must never route packed"
    );
}

#[test]
fn packed_predictions_are_thread_count_invariant() {
    let mut hw = noiseless_model();
    let x = binary_inputs(6, 1);
    let sequential = hw.predict_seeded(&x, 0xD15E);
    assert!(hw.packed_call_count() > 0, "sequential run must engage the packed kernel");
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let parallel = hw.predict_par(&x, 0xD15E, &pool);
        assert_eq!(parallel, sequential, "{threads} threads vs sequential (packed)");
    }
    // NEUSPIN_THREADS drives the default pool through the same engine.
    std::env::set_var("NEUSPIN_THREADS", "3");
    let pool = ThreadPool::from_env();
    assert_eq!(pool.threads(), 3);
    assert_eq!(hw.predict_par(&x, 0xD15E, &pool), sequential, "NEUSPIN_THREADS pool");
    std::env::remove_var("NEUSPIN_THREADS");
}

#[test]
fn traced_packed_predictions_match_untraced_across_policies() {
    // Telemetry on: tracing consumes no RNG and must not disturb the
    // packed/scalar/reference equivalence, at any worker count.
    let _guard = neuspin::core::telemetry::test_lock();
    let x = binary_inputs(5, 2);
    let mut hw = noiseless_model();
    let untraced = hw.predict_par(&x, 0xCAFE, &ThreadPool::new(2));
    for policy in [KernelPolicy::Auto, KernelPolicy::Scalar, KernelPolicy::Reference] {
        hw.set_kernel_policy(policy);
        for threads in [1usize, 2, 4] {
            neuspin::core::telemetry::set_enabled(true, true);
            neuspin::core::telemetry::reset();
            let traced = hw.predict_par(&x, 0xCAFE, &ThreadPool::new(threads));
            let events = neuspin::core::telemetry::take_trace();
            neuspin::core::telemetry::set_enabled(false, false);
            assert_eq!(traced, untraced, "{policy:?}, {threads} threads, traced vs untraced");
            assert!(!events.is_empty(), "trace must capture the MC passes");
        }
    }
}
