//! E2E acceptance for the active fault-management tier.
//!
//! A 16-input × 64-column crossbar classifier (10 template classes on
//! the first 10 columns) is fabricated at `DefectRates::uniform(0.01)`
//! with 4 spare columns. The acceptance criteria, all from fixed seeds:
//!
//! 1. march-test BIST detects ≥ 90 % of the injected shorts/opens,
//! 2. spare-column repair + fault-aware remapping recovers at least
//!    half of the accuracy lost to defects versus the no-management
//!    baseline on the *same die*,
//! 3. entropy-gated abstention on the unmanaged die yields
//!    accuracy-on-accepted above the unguarded accuracy while keeping
//!    coverage ≥ 70 %,
//! 4. the whole loop is bit-for-bit deterministic.

use neuspin::bayes::{entropy_threshold_for_coverage, mc_predict_with, Predictive};
use neuspin::cim::{
    fault_aware_remap, march_test, repair_columns, BistConfig, Crossbar, CrossbarConfig,
};
use neuspin::device::{DefectKind, DefectRates, VariedParams};
use neuspin::nn::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ROWS: usize = 16; // input dimension
const COLS: usize = 64; // physical columns; the first CLASSES are logits
const CLASSES: usize = 10;
const SPARES: usize = 4;
const PASSES: usize = 8;
const TEMP: f32 = 4.0; // softmax temperature on the (ADC-clipped) logits
const DIE_SEED: u64 = 0xD1E_0008;

fn faulty_config() -> CrossbarConfig {
    CrossbarConfig {
        corner: VariedParams::ideal(),
        defect_rates: DefectRates::uniform(0.01),
        read_noise: 0.05,
        adc_bits: Some(6),
        ir_drop: 0.0,
    }
}

fn clean_config() -> CrossbarConfig {
    CrossbarConfig { defect_rates: DefectRates::none(), ..faulty_config() }
}

/// One ±1 template per class, plus filler ±1 weights on the unused
/// columns (binary crossbars cannot store zeros).
fn weights(rng: &mut StdRng) -> Vec<f32> {
    let templates: Vec<Vec<f32>> = (0..CLASSES)
        .map(|_| (0..ROWS).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect())
        .collect();
    let mut w = vec![0.0f32; ROWS * COLS];
    for r in 0..ROWS {
        for c in 0..COLS {
            w[r * COLS + c] = if c < CLASSES {
                templates[c][r]
            } else if (r * 31 + c * 7) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
        }
    }
    w
}

/// Noisy class templates: the crossbar's matched filter should recover
/// the label with a wide margin on healthy hardware.
fn make_split(n: usize, w: &[f32], rng: &mut StdRng) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        let x: Vec<f32> = (0..ROWS)
            .map(|r| 0.8 * w[r * COLS + class] + 0.35 * rand::dist::standard_normal(rng) as f32)
            .collect();
        inputs.push(x);
        labels.push(class);
    }
    (inputs, labels)
}

fn predict(xbar: &mut Crossbar, inputs: &[Vec<f32>], rng: &mut StdRng) -> Predictive {
    let n = inputs.len();
    mc_predict_with(PASSES, |_| {
        let mut logits = vec![0.0f32; n * CLASSES];
        for (i, x) in inputs.iter().enumerate() {
            let out = xbar.matvec(x, rng);
            for c in 0..CLASSES {
                logits[i * CLASSES + c] = out[c] as f32 / TEMP;
            }
        }
        Tensor::from_vec(logits, &[n, CLASSES])
    })
}

/// Logical-column importance for the remap stage: only the class
/// columns carry signal; the filler columns are expendable.
fn importance() -> Vec<f32> {
    let mut m = vec![0.0f32; ROWS * COLS];
    for r in 0..ROWS {
        for c in 0..CLASSES {
            m[r * COLS + c] = 1.0;
        }
    }
    m
}

struct Outcome {
    detection: f64,
    acc_clean: f64,
    acc_baseline: f64,
    acc_managed: f64,
    acc_accepted: f64,
    coverage: f64,
    gated_entropies: Vec<f64>,
}

fn run_campaign() -> Outcome {
    let w = weights(&mut StdRng::seed_from_u64(0x7E71));
    let (calib, calib_labels) = make_split(100, &w, &mut StdRng::seed_from_u64(0xCA11B));
    let (test, test_labels) = make_split(200, &w, &mut StdRng::seed_from_u64(0x7E57));
    let _ = calib_labels;

    // Healthy reference die.
    let mut clean = Crossbar::program_with_spares(
        &w,
        ROWS,
        COLS,
        SPARES,
        &clean_config(),
        &mut StdRng::seed_from_u64(DIE_SEED),
    );
    let acc_clean =
        predict(&mut clean, &test, &mut StdRng::seed_from_u64(31)).accuracy(&test_labels);

    // Damaged die, left alone.
    let mut baseline = Crossbar::program_with_spares(
        &w,
        ROWS,
        COLS,
        SPARES,
        &faulty_config(),
        &mut StdRng::seed_from_u64(DIE_SEED),
    );
    let base_pred = predict(&mut baseline, &test, &mut StdRng::seed_from_u64(31));
    let acc_baseline = base_pred.accuracy(&test_labels);

    // Same damaged die (same seed), full management pipeline.
    let mut managed = Crossbar::program_with_spares(
        &w,
        ROWS,
        COLS,
        SPARES,
        &faulty_config(),
        &mut StdRng::seed_from_u64(DIE_SEED),
    );
    let report =
        march_test(&mut managed, &BistConfig::default(), &mut StdRng::seed_from_u64(41));
    let detection =
        report.detection_rate(managed.defects(), &[DefectKind::Short, DefectKind::Open]);
    let mut estimated = report.estimated;
    let _repair = repair_columns(&mut managed, &mut estimated);
    let remap = fault_aware_remap(&estimated, &importance(), ROWS, COLS);
    if !remap.is_identity() {
        managed.apply_remap(remap.row_src, remap.col_src);
    }
    let acc_managed =
        predict(&mut managed, &test, &mut StdRng::seed_from_u64(31)).accuracy(&test_labels);

    // Abstention on the *unmanaged* die: graceful degradation when no
    // spares/remap are available. Threshold calibrated for 80 %
    // coverage on held-out data pushed through the same damaged die.
    let calib_pred = predict(&mut baseline, &calib, &mut StdRng::seed_from_u64(51));
    let threshold = entropy_threshold_for_coverage(&calib_pred.entropy, 0.8);
    let gated = base_pred.gate(threshold);
    let acc_accepted = base_pred.accuracy_on_accepted(&test_labels, &gated);

    Outcome {
        detection,
        acc_clean,
        acc_baseline,
        acc_managed,
        acc_accepted,
        coverage: gated.coverage(),
        gated_entropies: base_pred.entropy.clone(),
    }
}

#[test]
fn bist_detects_at_least_ninety_percent_of_hard_faults() {
    let outcome = run_campaign();
    assert!(
        outcome.detection >= 0.9,
        "detection rate {:.3} below the 90 % acceptance bar",
        outcome.detection
    );
}

#[test]
fn repair_and_remap_recover_half_the_lost_accuracy() {
    let o = run_campaign();
    let lost = o.acc_clean - o.acc_baseline;
    assert!(
        lost > 0.05,
        "seed must injure the baseline (clean {:.3}, baseline {:.3})",
        o.acc_clean,
        o.acc_baseline
    );
    let recovered = o.acc_managed - o.acc_baseline;
    assert!(
        recovered >= 0.5 * lost,
        "recovered {recovered:.3} of {lost:.3} lost (clean {:.3} baseline {:.3} managed {:.3})",
        o.acc_clean,
        o.acc_baseline,
        o.acc_managed
    );
}

#[test]
fn abstention_beats_unguarded_accuracy_at_high_coverage() {
    let o = run_campaign();
    assert!(
        o.coverage >= 0.7,
        "coverage {:.3} below the 70 % acceptance bar",
        o.coverage
    );
    assert!(
        o.acc_accepted > o.acc_baseline,
        "accuracy-on-accepted {:.3} must beat unguarded {:.3}",
        o.acc_accepted,
        o.acc_baseline
    );
    assert!(o.gated_entropies.iter().all(|h| h.is_finite()));
}

/// Not an assertion — run with `--ignored --nocapture` to inspect the
/// campaign's raw numbers when retuning seeds or thresholds.
#[test]
#[ignore]
fn print_campaign_numbers() {
    let o = run_campaign();
    eprintln!("detection     {:.3}", o.detection);
    eprintln!("acc clean     {:.3}", o.acc_clean);
    eprintln!("acc baseline  {:.3}", o.acc_baseline);
    eprintln!("acc managed   {:.3}", o.acc_managed);
    eprintln!("acc accepted  {:.3}", o.acc_accepted);
    eprintln!("coverage      {:.3}", o.coverage);
}

#[test]
fn campaign_is_deterministic() {
    let a = run_campaign();
    let b = run_campaign();
    assert_eq!(a.detection, b.detection);
    assert_eq!(a.acc_clean, b.acc_clean);
    assert_eq!(a.acc_baseline, b.acc_baseline);
    assert_eq!(a.acc_managed, b.acc_managed);
    assert_eq!(a.acc_accepted, b.acc_accepted);
    assert_eq!(a.coverage, b.coverage);
}
