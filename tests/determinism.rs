//! Reproducibility: the entire stack is a pure function of the seed.

use neuspin::bayes::{build_cnn, mc_predict, ArchConfig, Method};
use neuspin::cim::{Crossbar, CrossbarConfig};
use neuspin::core::{HardwareConfig, HardwareModel};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::nn::{fit, Adam, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arch() -> ArchConfig {
    ArchConfig { c1: 4, c2: 8, hidden: 16, ..ArchConfig::default() }
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let a = dataset(50, &DigitStyle::default(), &mut StdRng::seed_from_u64(5));
    let b = dataset(50, &DigitStyle::default(), &mut StdRng::seed_from_u64(5));
    assert_eq!(a.inputs, b.inputs);
    assert_eq!(a.labels, b.labels);
    let c = dataset(50, &DigitStyle::default(), &mut StdRng::seed_from_u64(6));
    assert_ne!(a.inputs, c.inputs);
}

#[test]
fn training_is_seed_deterministic() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(7);
        let data = dataset(200, &DigitStyle::easy(), &mut rng);
        let mut model = build_cnn(Method::SpinDrop, &arch(), &mut rng);
        let mut opt = Adam::new(0.003);
        let cfg = TrainConfig { epochs: 2, batch_size: 32, ..Default::default() };
        fit(&mut model, &data, &mut opt, &cfg, &mut rng);
        model.state_dict()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical weights");
}

#[test]
fn mc_prediction_is_seed_deterministic() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(8);
        let data = dataset(20, &DigitStyle::easy(), &mut rng);
        let mut model = build_cnn(Method::SpinScaleDrop, &arch(), &mut rng);
        mc_predict(&mut model, &data.inputs, 5, &mut rng).mean_probs
    };
    assert_eq!(run(), run());
}

#[test]
fn crossbar_programming_is_seed_deterministic() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(9);
        let w: Vec<f32> = (0..64).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig::default();
        let mut xbar = Crossbar::program(&w, 8, 8, &config, &mut rng);
        xbar.matvec(&[1.0; 8], &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn hardware_pipeline_is_seed_deterministic() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(10);
        let data = dataset(30, &DigitStyle::easy(), &mut rng);
        let mut model = build_cnn(Method::SpatialSpinDrop, &arch(), &mut rng);
        let mut hw = HardwareModel::compile(
            &mut model,
            Method::SpatialSpinDrop,
            &arch(),
            &HardwareConfig { passes: 3, ..HardwareConfig::default() },
            &mut rng,
        );
        hw.calibrate(&data.inputs, 1, &mut rng);
        let pred = hw.predict(&data.inputs, &mut rng);
        (pred.mean_probs, hw.counter())
    };
    let (probs_a, counter_a) = run();
    let (probs_b, counter_b) = run();
    assert_eq!(probs_a, probs_b);
    assert_eq!(counter_a, counter_b, "even op counts must reproduce");
}
