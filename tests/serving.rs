//! End-to-end tests of the serving front door: a real TCP server over
//! a [`DieFleet`] of commissioned supervisors, driven by the blocking
//! client.
//!
//! Covered contracts:
//! * round trips: `POST /predict`, `GET /healthz`, `GET /metrics`;
//! * abstention-aware routing: an Abstain-tier die receives no
//!   traffic, and a fleet that is entirely abstaining answers `503`
//!   instead of emitting garbage;
//! * load shedding: a saturated predict queue answers `429` — every
//!   client still gets a terminal HTTP response;
//! * graceful shutdown: requests in flight when the drain starts are
//!   all answered before the workers exit (the no-drop guarantee);
//! * serving determinism: identical fleets + identical request streams
//!   produce bit-identical probability vectors;
//! * lineage: every `200` carries an `X-NeuSpin-Trace` header that
//!   parses and agrees with the response body;
//! * debug surface: `/debug/flight` and `/debug/slo` round-trip through
//!   the hardened HTTP parser, unknown debug paths 404, oversized
//!   queries 431, and dumping the flight log races safely with a drain.

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::cim::CrossbarConfig;
use neuspin::core::serve::client;
use neuspin::core::{
    serve, DieFleet, HardwareConfig, HardwareModel, HealthPolicy, Json, RequestTrace, ServeConfig,
    Supervisor, SupervisorConfig,
};
use neuspin::device::AgingConfig;
use neuspin::nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const SIDE: usize = 8;
const CLASSES: usize = 4;
const INPUT_LEN: usize = SIDE * SIDE;

fn arch() -> ArchConfig {
    ArchConfig { c1: 2, c2: 4, hidden: 16, classes: CLASSES, side: SIDE, ..ArchConfig::default() }
}

/// A commissioned die on ideal hardware (drift-only aging).
fn die(seed: u64) -> Supervisor {
    let a = arch();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig::ideal(),
        passes: 3,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &config, &mut rng);
    hw.enable_aging(&AgingConfig { seed: seed ^ 0xA9, ..AgingConfig::default() });
    let mut sup = Supervisor::new(hw, SupervisorConfig { seed, ..SupervisorConfig::default() });
    let calib = Tensor::from_fn(&[8, 1, SIDE, SIDE], |i| ((i * 13 % 97) as f32 / 97.0) - 0.5);
    let monitor = Tensor::from_fn(&[4, 1, SIDE, SIDE], |i| ((i * 7 % 89) as f32 / 89.0) - 0.5);
    sup.commission(calib, &monitor);
    sup
}

fn fleet(n: usize, base_seed: u64) -> DieFleet {
    DieFleet::new((0..n).map(|i| die(base_seed + i as u64)).collect())
}

fn config() -> ServeConfig {
    ServeConfig {
        input_shape: vec![1, SIDE, SIDE],
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

fn sample(tag: usize) -> Vec<f32> {
    (0..INPUT_LEN)
        .map(|i| (((i * 31 + tag * 131) % 83) as f32 / 83.0) - 0.5)
        .collect()
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(15);

fn predict_json(addr: std::net::SocketAddr, tag: usize) -> (u16, Json) {
    let resp = client::predict(addr, &sample(tag), CLIENT_TIMEOUT).expect("predict transport");
    let json = neuspin::core::json::parse(&resp.text()).expect("predict body must be JSON");
    (resp.status, json)
}

#[test]
fn predict_healthz_and_metrics_round_trip() {
    let mut handle = serve(fleet(2, 0x7100), config()).expect("bind");
    let addr = handle.addr();

    let (status, json) = predict_json(addr, 1);
    assert_eq!(status, 200);
    let class = json.get("class").and_then(|v| v.as_f64()).expect("class") as usize;
    assert!(class < CLASSES, "class {class} out of range");
    let probs = json.get("probs").and_then(|v| v.as_arr()).expect("probs");
    assert_eq!(probs.len(), CLASSES);
    let total: f64 = probs.iter().filter_map(|p| p.as_f64()).sum();
    assert!((total - 1.0).abs() < 1e-3, "probs must sum to 1, got {total}");
    assert!(json.get("entropy").and_then(|v| v.as_f64()).expect("entropy") >= 0.0);
    assert!(json.get("abstained").and_then(|v| v.as_bool()).is_some());

    let health = client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let hj = neuspin::core::json::parse(&health.text()).expect("healthz JSON");
    assert_eq!(hj.get("dies").and_then(|v| v.as_arr()).expect("dies").len(), 2);

    let metrics = client::request(addr, "GET", "/metrics", None, CLIENT_TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);

    let missing = client::request(addr, "GET", "/nope", None, CLIENT_TIMEOUT).expect("404 route");
    assert_eq!(missing.status, 404);
    let bad = client::request(addr, "POST", "/predict", Some("{\"input\": [1]}"), CLIENT_TIMEOUT)
        .expect("short input");
    assert_eq!(bad.status, 400, "wrong-length input must be a client error");

    let report = handle.shutdown(Duration::from_secs(10));
    assert!(report.drained && !report.forced, "{report:?}");
}

#[test]
fn abstaining_die_gets_no_traffic_and_empty_fleet_is_503() {
    let mut handle = serve(fleet(2, 0x7200), config()).expect("bind");
    let addr = handle.addr();
    let eval = Tensor::from_fn(&[4, 1, SIDE, SIDE], |i| ((i * 11 % 71) as f32 / 71.0) - 0.5);

    // Collapse die 0's abstention threshold: the next observation
    // latches Abstain (the safety tier bypasses the dwell).
    handle.fleet().with_die(0, |sup| {
        sup.monitor_mut().set_abstain_entropy(1e-9);
        sup.serve_predict(&eval, 0xAB);
    });
    assert_eq!(handle.fleet().tier(0), HealthPolicy::Abstain);

    for tag in 0..6 {
        let (status, json) = predict_json(addr, tag);
        assert_eq!(status, 200, "healthy die 1 must keep serving");
        let served_by = json.get("die").and_then(|v| v.as_f64()).expect("die") as usize;
        assert_eq!(served_by, 1, "abstaining die 0 must receive no traffic");
    }
    assert_eq!(handle.fleet().served(0), 0);

    let health = client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    let hj = neuspin::core::json::parse(&health.text()).expect("healthz JSON");
    assert_eq!(hj.get("status").and_then(|v| v.as_str()), Some("degraded"));

    // Now collapse die 1 as well: the whole fleet abstains, and the
    // server must answer 503 — an honest refusal, not a drop.
    handle.fleet().with_die(1, |sup| {
        sup.monitor_mut().set_abstain_entropy(1e-9);
        sup.serve_predict(&eval, 0xAC);
    });
    let resp = client::predict(addr, &sample(9), CLIENT_TIMEOUT).expect("transport");
    assert_eq!(resp.status, 503, "fleet-wide abstention must be 503: {}", resp.text());

    let health = client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 503);

    handle.shutdown(Duration::from_secs(10));
}

#[test]
fn saturated_predict_queue_sheds_with_429_and_answers_everyone() {
    // One-slot predict queue + a long linger: while the batcher holds
    // its first sample, one more can queue and the rest must shed.
    let cfg = ServeConfig {
        input_shape: vec![1, SIDE, SIDE],
        queue_capacity: 1,
        max_batch: 8,
        max_wait: Duration::from_millis(300),
        http_workers: 4,
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let mut handle = serve(fleet(1, 0x7300), cfg).expect("bind");
    let addr = handle.addr();

    let clients: Vec<_> = (0..8)
        .map(|tag| {
            std::thread::spawn(move || {
                client::predict(addr, &sample(tag), CLIENT_TIMEOUT)
                    .expect("every client must get a terminal HTTP response")
                    .status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(ok + shed, 8, "only 200/429 expected, got {statuses:?}");
    assert!(ok >= 1, "someone must be served: {statuses:?}");
    assert!(shed >= 1, "a one-slot queue under an 8-way burst must shed: {statuses:?}");
    assert!(handle.stats().shed >= shed as u64);

    handle.shutdown(Duration::from_secs(10));
}

#[test]
fn graceful_shutdown_drains_every_in_flight_request() {
    // A long linger keeps requests parked in the batch queue; shutdown
    // fires while they are in flight and must still answer them all.
    let cfg = ServeConfig {
        input_shape: vec![1, SIDE, SIDE],
        max_batch: 16,
        max_wait: Duration::from_millis(400),
        queue_capacity: 64,
        http_workers: 6,
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let mut handle = serve(fleet(2, 0x7400), cfg).expect("bind");
    let addr = handle.addr();

    let clients: Vec<_> = (0..6)
        .map(|tag| {
            std::thread::spawn(move || {
                client::predict(addr, &sample(tag), CLIENT_TIMEOUT)
                    .expect("drain must answer, never drop")
                    .status
            })
        })
        .collect();
    // Let the requests reach the predict queue, then start the drain
    // mid-linger.
    std::thread::sleep(Duration::from_millis(120));
    let report = handle.shutdown(Duration::from_secs(10));
    assert!(report.drained, "drain must finish inside the deadline: {report:?}");
    assert!(!report.forced);
    assert_eq!(report.abandoned, 0);

    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|&s| s == 200),
        "every in-flight request must be answered 200 through the drain, got {statuses:?}"
    );
}

#[test]
fn trace_header_agrees_with_the_response_body() {
    let mut handle = serve(fleet(2, 0x7600), config()).expect("bind");
    let addr = handle.addr();
    for tag in 0..3 {
        let resp = client::predict(addr, &sample(tag), CLIENT_TIMEOUT).expect("transport");
        assert_eq!(resp.status, 200);
        let header = resp
            .header("x-neuspin-trace")
            .expect("every 200 predict must carry a trace header");
        let trace = RequestTrace::parse_header(header)
            .unwrap_or_else(|| panic!("trace header must parse: {header}"));
        assert_eq!(trace.rid.0, tag as u64, "sequential requests get sequential rids");
        let json = neuspin::core::json::parse(&resp.text()).expect("predict body JSON");
        let die = json.get("die").and_then(|v| v.as_f64()).expect("die") as usize;
        assert_eq!(trace.die, die, "header and body must name the same die");
        assert_eq!(trace.failovers, 0, "a healthy fleet needs no failover");
    }
    // Non-predict routes carry no lineage: they never enter the queue.
    let health = client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert!(health.header("x-neuspin-trace").is_none());
    handle.shutdown(Duration::from_secs(10));
}

#[test]
fn metrics_speak_the_prometheus_exposition_format() {
    let mut handle = serve(fleet(1, 0x7700), config()).expect("bind");
    let addr = handle.addr();
    let _ = predict_json(addr, 0);

    let resp = client::request(addr, "GET", "/metrics", None, CLIENT_TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "scrapers key on the exposition-format content type"
    );
    // A strict line-level parse of the text format: every line is a
    // comment or `name value` where the value parses as f64.
    let body = resp.text();
    let mut samples = 0;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("metric line must be `name value`: {line:?}"));
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '{'
                || c == '}' || c == '"' || c == '=' || c == '.' || c == '+'),
            "metric name has invalid characters: {name:?}"
        );
        assert!(value.parse::<f64>().is_ok(), "unparseable sample value in {line:?}");
        samples += 1;
    }
    assert!(samples > 0, "metrics body must expose at least one sample");
    handle.shutdown(Duration::from_secs(10));
}

#[test]
fn debug_endpoints_round_trip_and_unknown_paths_404() {
    let _guard = neuspin::core::telemetry::test_lock();
    neuspin::core::flight::reset();
    neuspin::core::flight::set_enabled(true);

    let mut handle = serve(fleet(2, 0x7800), config()).expect("bind");
    let addr = handle.addr();
    let _ = predict_json(addr, 0);

    let flight = client::request(addr, "GET", "/debug/flight", None, CLIENT_TIMEOUT)
        .expect("flight dump");
    assert_eq!(flight.status, 200);
    assert_eq!(flight.header("content-type"), Some("application/jsonl"));
    let body = flight.text();
    assert!(!body.is_empty(), "a served request must leave flight events");
    let mut kinds = Vec::new();
    for line in body.lines() {
        let ev = neuspin::core::json::parse(line).expect("every flight line parses");
        assert!(ev.get("seq").and_then(|v| v.as_f64()).is_some());
        kinds.push(ev.get("kind").and_then(|v| v.as_str()).expect("kind").to_string());
    }
    assert!(kinds.iter().any(|k| k == "route"), "missing route event: {kinds:?}");
    assert!(kinds.iter().any(|k| k == "answered"), "missing answered event: {kinds:?}");

    let slo = client::request(addr, "GET", "/debug/slo", None, CLIENT_TIMEOUT).expect("slo");
    assert_eq!(slo.status, 200);
    let sj = neuspin::core::json::parse(&slo.text()).expect("slo JSON");
    assert_eq!(sj.get("window").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(sj.get("availability").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(sj.get("dies").and_then(|v| v.as_arr()).expect("dies").len(), 2);

    // Unknown debug paths fall through the same hardened 404 as any
    // other unrouted request.
    let nope = client::request(addr, "GET", "/debug/nope", None, CLIENT_TIMEOUT).expect("404");
    assert_eq!(nope.status, 404);

    // An oversized query string blows the head budget: 431, not a hang
    // or an unbounded read.
    let big = format!("/debug/flight?pad={}", "x".repeat(20 * 1024));
    let huge = client::request(addr, "GET", &big, None, CLIENT_TIMEOUT).expect("431");
    assert_eq!(huge.status, 431);

    neuspin::core::flight::set_enabled(false);
    neuspin::core::flight::reset();
    handle.shutdown(Duration::from_secs(10));
}

#[test]
fn flight_dump_races_safely_with_a_drain() {
    let mut handle = serve(fleet(1, 0x7900), config()).expect("bind");
    let addr = handle.addr();
    let _ = predict_json(addr, 0);

    // Hammer the debug surface from another thread while the server
    // drains: every request must end in a terminal HTTP response or a
    // clean transport error (listener gone), never a hang or a panic.
    let hammer = std::thread::spawn(move || {
        let mut terminal = 0;
        for _ in 0..50 {
            match client::request(addr, "GET", "/debug/flight", None, CLIENT_TIMEOUT) {
                Ok(resp) => {
                    assert!(
                        resp.status == 200 || resp.status == 503,
                        "unexpected status during drain: {}",
                        resp.status
                    );
                    terminal += 1;
                }
                Err(_) => break,
            }
        }
        terminal
    });
    std::thread::sleep(Duration::from_millis(20));
    let report = handle.shutdown(Duration::from_secs(10));
    assert!(report.drained, "{report:?}");
    let terminal = hammer.join().expect("hammer thread must not panic");
    assert!(terminal >= 1, "at least one dump must land before the listener closes");
}

#[test]
fn identical_fleets_and_requests_serve_bit_identical_probabilities() {
    let run = || {
        let mut handle = serve(fleet(1, 0x7500), config()).expect("bind");
        let addr = handle.addr();
        let mut probs_seen = Vec::new();
        for tag in 0..3 {
            let (status, json) = predict_json(addr, tag);
            assert_eq!(status, 200);
            let probs: Vec<u32> = json
                .get("probs")
                .and_then(|v| v.as_arr())
                .expect("probs")
                .iter()
                .map(|p| (p.as_f64().unwrap() as f32).to_bits())
                .collect();
            probs_seen.push(probs);
        }
        handle.shutdown(Duration::from_secs(10));
        probs_seen
    };
    // Sequential single requests: batch k always gets batch-seed k, so
    // two identical servers serve identical streams bit-for-bit.
    assert_eq!(run(), run(), "serving must be deterministic under fixed seeds");
}
