//! Property-based invariants spanning the workspace.
//!
//! Formerly `proptest!` suites; now deterministic seeded loops over the
//! vendored RNG. Every case's generator is derived from `BASE`, the
//! property's id, and the case index, so any failure names the exact
//! seed that reproduces it.

use neuspin::bayes::quantize;
use neuspin::cim::{Adc, Crossbar, CrossbarConfig};
use neuspin::device::{MtjParams, SwitchingModel};
use neuspin::nn::{softmax, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0x14FA_0005;

/// Sampled cases per property.
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(case_seed(property, case))
}

#[test]
fn switching_probability_is_a_probability() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let current = rng.random_range(0.0f64..200e-6);
        let duration = rng.random_range(0.0f64..1e-6);
        let m = SwitchingModel::from_params(&MtjParams::default());
        let p = m.probability(current, duration);
        let seed = case_seed(1, case);
        assert!((0.0..=1.0).contains(&p), "seed {seed:#x}: p {p}");
        assert!(p.is_finite(), "seed {seed:#x}: p {p}");
    }
}

#[test]
fn switching_probability_monotone_in_current() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let base = rng.random_range(1e-6f64..100e-6);
        let delta = rng.random_range(0.0f64..50e-6);
        let m = SwitchingModel::from_params(&MtjParams::default());
        let t = 10e-9;
        assert!(
            m.probability(base + delta, t) >= m.probability(base, t),
            "seed {:#x}",
            case_seed(2, case)
        );
    }
}

#[test]
fn calibration_inverse_roundtrips() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let p = rng.random_range(0.01f64..0.99);
        let m = SwitchingModel::from_params(&MtjParams::default());
        let i = m.current_for_probability(p, 10e-9);
        let back = m.probability(i, 10e-9);
        assert!((back - p).abs() < 1e-6, "seed {:#x}: p {p} → {back}", case_seed(3, case));
    }
}

#[test]
fn adc_quantization_error_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let bits = rng.random_range(2u32..10);
        let x = rng.random_range(-100.0f64..100.0);
        let adc = Adc::new(bits, 50.0);
        let q = adc.quantize(x);
        let clipped = x.clamp(-50.0, 50.0);
        assert!(
            (q - clipped).abs() <= adc.step() / 2.0 + 1e-9,
            "seed {:#x}: x {x} q {q}",
            case_seed(4, case)
        );
    }
}

#[test]
fn weight_quantization_bounded_and_idempotent() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let w = rng.random_range(-3.0f32..3.0);
        let levels = rng.random_range(2usize..64);
        let q = quantize(w, levels, 1.0);
        let seed = case_seed(5, case);
        assert!((-1.0..=1.0).contains(&q), "seed {seed:#x}: q {q}");
        let qq = quantize(q, levels, 1.0);
        assert!((q - qq).abs() < 1e-6, "seed {seed:#x}: quantization must be idempotent");
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let data: Vec<f32> = (0..12).map(|_| rng.random_range(-20.0f32..20.0)).collect();
        let t = Tensor::from_vec(data, &[3, 4]);
        let p = softmax(&t);
        let seed = case_seed(6, case);
        for i in 0..3 {
            let row_sum: f32 = p.row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "seed {seed:#x}: row {i} sums to {row_sum}");
            assert!(
                p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)),
                "seed {seed:#x}: row {i}"
            );
        }
    }
}

#[test]
fn ideal_crossbar_mvm_is_linear() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let scale = rng.random_range(0.1f32..4.0);
        // f(a·x) == a·f(x) for an ideal (noise-free, no-ADC) crossbar.
        let w: Vec<f32> = (0..24)
            .map(|i| if (i * 7 + case as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let mut xbar = Crossbar::program(&w, 6, 4, &CrossbarConfig::ideal(), &mut rng);
        let x: Vec<f32> = (0..6).map(|i| ((i as f32) - 2.5) / 3.0).collect();
        let y1 = xbar.matvec(&x, &mut rng);
        let xs: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = xbar.matvec(&xs, &mut rng);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(
                (a * scale as f64 - b).abs() < 1e-4,
                "seed {:#x}: {a} {b}",
                case_seed(7, case)
            );
        }
    }
}

#[test]
fn tensor_matmul_distributes_over_addition() {
    for case in 0..CASES {
        let mk = |s: u64, shape: &[usize]| {
            Tensor::from_fn(shape, |i| {
                (((i as u64 * 2654435761 + s) % 1000) as f32 / 500.0) - 1.0
            })
        };
        let a = mk(case, &[3, 4]);
        let b = mk(case + 1, &[4, 2]);
        let c = mk(case + 2, &[4, 2]);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        let diff = (&lhs - &rhs).map(f32::abs).max();
        assert!(diff < 1e-4, "case {case}: distributivity violated by {diff}");
    }
}

#[test]
fn crossbar_row_gating_equals_zeroed_input() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let w: Vec<f32> = (0..20).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig::ideal();
        let mut xbar = Crossbar::program(&w, 5, 4, &config, &mut rng);
        let x = [0.5f32, -1.0, 0.25, 1.0, -0.75];
        // Gate row 2 ↔ zero input 2.
        xbar.set_row_enabled(2, false);
        let gated = xbar.matvec(&x, &mut rng);
        xbar.enable_all_rows();
        let mut x_zeroed = x;
        x_zeroed[2] = 0.0;
        let zeroed = xbar.matvec(&x_zeroed, &mut rng);
        for (a, b) in gated.iter().zip(&zeroed) {
            assert!((a - b).abs() < 1e-9, "seed {:#x}", case_seed(9, case));
        }
    }
}
