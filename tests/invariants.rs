//! Property-based invariants spanning the workspace (proptest).

use neuspin::bayes::quantize;
use neuspin::cim::{Adc, Crossbar, CrossbarConfig};
use neuspin::device::{MtjParams, SwitchingModel};
use neuspin::nn::{softmax, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn switching_probability_is_a_probability(
        current in 0.0f64..200e-6,
        duration in 0.0f64..1e-6,
    ) {
        let m = SwitchingModel::from_params(&MtjParams::default());
        let p = m.probability(current, duration);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p.is_finite());
    }

    #[test]
    fn switching_probability_monotone_in_current(
        base in 1e-6f64..100e-6,
        delta in 0.0f64..50e-6,
    ) {
        let m = SwitchingModel::from_params(&MtjParams::default());
        let t = 10e-9;
        prop_assert!(m.probability(base + delta, t) >= m.probability(base, t));
    }

    #[test]
    fn calibration_inverse_roundtrips(p in 0.01f64..0.99) {
        let m = SwitchingModel::from_params(&MtjParams::default());
        let i = m.current_for_probability(p, 10e-9);
        let back = m.probability(i, 10e-9);
        prop_assert!((back - p).abs() < 1e-6, "p {p} → {back}");
    }

    #[test]
    fn adc_quantization_error_bounded(
        bits in 2u32..10,
        x in -100.0f64..100.0,
    ) {
        let adc = Adc::new(bits, 50.0);
        let q = adc.quantize(x);
        let clipped = x.clamp(-50.0, 50.0);
        prop_assert!((q - clipped).abs() <= adc.step() / 2.0 + 1e-9);
    }

    #[test]
    fn weight_quantization_bounded_and_idempotent(
        w in -3.0f32..3.0,
        levels in 2usize..64,
    ) {
        let q = quantize(w, levels, 1.0);
        prop_assert!((-1.0..=1.0).contains(&q));
        let qq = quantize(q, levels, 1.0);
        prop_assert!((q - qq).abs() < 1e-6, "quantization must be idempotent");
    }

    #[test]
    fn softmax_rows_are_distributions(data in proptest::collection::vec(-20.0f32..20.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        let p = softmax(&t);
        for i in 0..3 {
            let row_sum: f32 = p.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn ideal_crossbar_mvm_is_linear(
        seed in 0u64..1000,
        scale in 0.1f32..4.0,
    ) {
        // f(a·x) == a·f(x) for an ideal (noise-free, no-ADC) crossbar.
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..24).map(|i| if (i * 7 + seed as usize) % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut xbar = Crossbar::program(&w, 6, 4, &CrossbarConfig::ideal(), &mut rng);
        let x: Vec<f32> = (0..6).map(|i| ((i as f32) - 2.5) / 3.0).collect();
        let y1 = xbar.matvec(&x, &mut rng);
        let xs: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = xbar.matvec(&xs, &mut rng);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale as f64 - b).abs() < 1e-4, "{a} {b}");
        }
    }

    #[test]
    fn tensor_matmul_distributes_over_addition(
        seed in 0u64..500,
    ) {
        let mk = |s: u64, shape: &[usize]| {
            Tensor::from_fn(shape, |i| (((i as u64 * 2654435761 + s) % 1000) as f32 / 500.0) - 1.0)
        };
        let a = mk(seed, &[3, 4]);
        let b = mk(seed + 1, &[4, 2]);
        let c = mk(seed + 2, &[4, 2]);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        let diff = (&lhs - &rhs).map(f32::abs).max();
        prop_assert!(diff < 1e-4, "distributivity violated by {diff}");
    }

    #[test]
    fn crossbar_row_gating_equals_zeroed_input(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..20).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let config = CrossbarConfig::ideal();
        let mut xbar = Crossbar::program(&w, 5, 4, &config, &mut rng);
        let x = [0.5f32, -1.0, 0.25, 1.0, -0.75];
        // Gate row 2 ↔ zero input 2.
        xbar.set_row_enabled(2, false);
        let gated = xbar.matvec(&x, &mut rng);
        xbar.enable_all_rows();
        let mut x_zeroed = x;
        x_zeroed[2] = 0.0;
        let zeroed = xbar.matvec(&x_zeroed, &mut rng);
        for (a, b) in gated.iter().zip(&zeroed) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
