//! E2E acceptance for the deterministic parallel MC engine.
//!
//! The contract under test: for a fault-managed hardware model,
//! [`HardwareModel::predict_par`] returns a `Predictive` that is
//! **bit-identical** for any worker count and to the sequential
//! [`HardwareModel::predict_seeded`] — and the merged op counters and
//! sense-margin statistics match what the sequential path would have
//! tallied. The same holds for the generic
//! [`neuspin::core::mc_predict_par`] against
//! [`neuspin::bayes::mc_predict_seeded`] on a bare crossbar classifier.

use neuspin::bayes::{build_cnn, mc_predict_seeded, ArchConfig, Method};
use neuspin::cim::{BistConfig, Crossbar, CrossbarConfig};
use neuspin::core::{
    mc_predict_par, reliability_base, HardwareConfig, HardwareModel, ThreadPool,
};
use neuspin::device::DefectRates;
use neuspin::nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PASSES: usize = 6;
const SEED: u64 = 0xFA017;

/// The fault-management E2E model: a SpinDrop CNN compiled onto
/// defective, noisy, IR-dropped, ADC-quantized crossbars with spare
/// columns, taken through BIST + repair + remap and calibration.
/// Deterministic — two calls build bit-identical models.
fn e2e_model() -> HardwareModel {
    let arch = ArchConfig { c1: 4, c2: 8, hidden: 16, ..ArchConfig::default() };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut sw = build_cnn(Method::SpinDrop, &arch, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig {
            defect_rates: DefectRates { short: 0.005, open: 0.005, ..DefectRates::none() },
            read_noise: 0.02,
            adc_bits: Some(6),
            ir_drop: 0.05,
            ..reliability_base().crossbar
        },
        spare_cols: 4,
        passes: PASSES,
        ..reliability_base()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &arch, &config, &mut rng);
    hw.fault_management(&BistConfig::default(), &mut StdRng::seed_from_u64(SEED ^ 1));
    let calib = inputs(12, 3);
    hw.calibrate(&calib, 2, &mut StdRng::seed_from_u64(SEED ^ 2));
    hw
}

/// A deterministic batch of synthetic images.
fn inputs(n: usize, tag: usize) -> Tensor {
    Tensor::from_fn(&[n, 1, 16, 16], |i| (((i * 31 + tag * 7) % 17) as f32) / 8.0 - 1.0)
}

#[test]
fn predict_par_is_thread_count_invariant_on_the_e2e_model() {
    let mut hw = e2e_model();
    let x = inputs(6, 0);
    let sequential = hw.predict_seeded(&x, 0xD15E);
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let parallel = hw.predict_par(&x, 0xD15E, &pool);
        assert_eq!(parallel, sequential, "{threads} threads vs sequential");
    }
    // NEUSPIN_THREADS drives the default pool through the same engine.
    std::env::set_var("NEUSPIN_THREADS", "3");
    let pool = ThreadPool::from_env();
    assert_eq!(pool.threads(), 3);
    assert_eq!(hw.predict_par(&x, 0xD15E, &pool), sequential, "NEUSPIN_THREADS pool");
    std::env::remove_var("NEUSPIN_THREADS");
}

#[test]
fn predict_par_merges_counters_and_margins_like_the_sequential_path() {
    // Twin dies from the same seeds: one runs sequentially, one in
    // parallel. The merged op counters and sense-margin statistics must
    // agree exactly — energy accounting may not depend on thread count.
    let mut seq = e2e_model();
    let mut par = e2e_model();
    let x = inputs(5, 1);
    seq.reset_counter();
    par.reset_counter();
    seq.reset_sense_margins();
    par.reset_sense_margins();
    let a = seq.predict_seeded(&x, 0xC0DE);
    let b = par.predict_par(&x, 0xC0DE, &ThreadPool::new(3));
    assert_eq!(a, b);
    assert_eq!(seq.counter(), par.counter(), "merged op counters diverged");
    // Margin sums are FP accumulators: the parallel path folds one
    // partial sum per worker, which reassociates the addition, so the
    // diagnostic agrees to rounding (ULPs) rather than bit-for-bit —
    // unlike the Predictive, whose reduction order is pinned.
    let (ms, mp) = (seq.mean_sense_margin(), par.mean_sense_margin());
    assert!(
        (ms - mp).abs() <= 1e-12 * ms.abs(),
        "merged sense margins diverged beyond rounding ({ms} vs {mp})"
    );
    assert!(par.counter().cell_reads > 0, "the passes must have exercised the crossbars");
}

#[test]
fn generic_engine_matches_seeded_sequential_on_a_crossbar_classifier() {
    // The pool-level engine with a plain crossbar matched filter as the
    // per-worker state (the fault_management.rs E2E convention).
    let config = CrossbarConfig {
        defect_rates: DefectRates { short: 0.01, open: 0.01, ..DefectRates::none() },
        read_noise: 0.05,
        adc_bits: Some(6),
        ir_drop: 0.05,
        ..CrossbarConfig::ideal()
    };
    let weights: Vec<f32> =
        (0..16 * 10).map(|i| if (i * 13) % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let xbar = Crossbar::program(&weights, 16, 10, &config, &mut StdRng::seed_from_u64(77));
    let batch: Vec<Vec<f32>> =
        (0..4).map(|i| (0..16).map(|r| ((i * r) % 5) as f32 / 2.0 - 1.0).collect()).collect();

    let forward = |xb: &mut Crossbar, rng: &mut StdRng| {
        let mut logits = vec![0.0f32; batch.len() * 10];
        for (i, x) in batch.iter().enumerate() {
            for (c, v) in xb.matvec(x, rng).into_iter().enumerate() {
                logits[i * 10 + c] = v as f32 / 4.0;
            }
        }
        Tensor::from_vec(logits, &[batch.len(), 10])
    };

    let mut seq_xbar = xbar.clone();
    let reference = mc_predict_seeded(8, 99, |_, rng| forward(&mut seq_xbar, rng));
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let (pred, workers) =
            mc_predict_par(&pool, 8, 99, |_| xbar.clone(), |xb, _, rng| forward(xb, rng));
        assert_eq!(pred, reference, "{threads} threads");
        assert!(!workers.is_empty());
    }
}

#[test]
fn traced_predict_par_is_byte_identical_across_worker_counts() {
    // Full tracing on: predictions must stay bit-identical (telemetry
    // never consumes RNG draws) and the serialized JSONL trace must
    // byte-compare across pool sizes (per-thread buffers are merged in
    // pass order; trace events carry no wall-clock fields).
    let _guard = neuspin::core::telemetry::test_lock();
    let mut hw = e2e_model();
    let x = inputs(6, 0);
    let untraced = hw.predict_par(&x, 0xD15E, &ThreadPool::new(2));

    let mut traces: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        neuspin::core::telemetry::set_enabled(true, true);
        neuspin::core::telemetry::reset();
        let pred = hw.predict_par(&x, 0xD15E, &ThreadPool::new(threads));
        let events = neuspin::core::telemetry::take_trace();
        neuspin::core::telemetry::set_enabled(false, false);
        assert_eq!(pred, untraced, "{threads} threads, traced vs untraced");
        assert!(!events.is_empty(), "trace must capture the MC passes");
        traces.push(neuspin::core::telemetry::trace_to_jsonl(&events));
    }
    assert_eq!(traces[0], traces[1], "trace bytes, 1 vs 2 workers");
    assert_eq!(traces[0], traces[2], "trace bytes, 1 vs 4 workers");
    assert!(traces[0].contains("\"span\":\"mc_pass\""));
}
