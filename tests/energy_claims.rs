//! The paper's quantitative cost claims, checked against the analytic
//! energy/area/memory models on the reference network.

use neuspin::bayes::Method;
use neuspin::cim::{map_conv, ArrayLimit, ConvMapping};
use neuspin::energy::{
    estimate_method_energy, memory_footprint, method_area, AreaModel, NetworkSpec,
};

fn uj(method: Method) -> f64 {
    estimate_method_energy(&NetworkSpec::lenet_reference(), method).per_image.micro()
}

#[test]
fn table1_energy_ordering() {
    // Paper (Table I): SpinDrop 2.00 > Spatial 0.68 > SubsetVi 0.30 >
    // SpinBayes 0.26 > ScaleDrop 0.18 µJ/image.
    let sd = uj(Method::SpinDrop);
    let sp = uj(Method::SpatialSpinDrop);
    let vi = uj(Method::SubsetVi);
    let sb = uj(Method::SpinBayes);
    let sc = uj(Method::SpinScaleDrop);
    assert!(sd > sp, "{sd} > {sp}");
    assert!(sp > vi, "{sp} > {vi}");
    assert!(vi > sb, "{vi} > {sb}");
    assert!(sb > sc, "{sb} > {sc}");
}

#[test]
fn table1_energy_magnitudes_in_band() {
    // Within 2× of each paper value.
    for (method, paper) in [
        (Method::SpinDrop, 2.00),
        (Method::SpatialSpinDrop, 0.68),
        (Method::SpinScaleDrop, 0.18),
        (Method::SubsetVi, 0.30),
        (Method::SpinBayes, 0.26),
    ] {
        let ours = uj(method);
        let ratio = ours / paper;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{method}: {ours:.3} µJ vs paper {paper} µJ (ratio {ratio:.2})"
        );
    }
}

#[test]
fn spatial_vs_spindrop_energy_factor_near_2_94() {
    let ratio = uj(Method::SpinDrop) / uj(Method::SpatialSpinDrop);
    assert!((2.0..=4.0).contains(&ratio), "paper: 2.94×, got {ratio:.2}×");
}

#[test]
fn module_reduction_9x_for_3x3_kernels() {
    let report = map_conv(16, 32, 3, ConvMapping::UnfoldedColumns, &ArrayLimit::default());
    assert!((report.spatial_reduction() - 9.0).abs() < 1e-9);
    let report5 = map_conv(16, 32, 5, ConvMapping::UnfoldedColumns, &ArrayLimit::default());
    assert!((report5.spatial_reduction() - 25.0).abs() < 1e-9);
}

#[test]
fn scaledrop_rng_reduction_exceeds_100x() {
    // The >100× energy-saving claim for scale dropout traces to its
    // RNG-bit count: one per layer vs one per activation.
    let spec = NetworkSpec::lenet_reference();
    let sd = estimate_method_energy(&spec, Method::SpinDrop);
    let sc = estimate_method_energy(&spec, Method::SpinScaleDrop);
    let rng_ratio = sd.counter.rng_bits as f64
        / (sd.profile.passes as f64)
        / (sc.counter.rng_bits as f64 / sc.profile.passes as f64);
    assert!(rng_ratio > 100.0, "RNG reduction {rng_ratio}");
    // And the RNG *energy* component collapses accordingly.
    assert!(sd.breakdown.rng.0 > 100.0 * sc.breakdown.rng.0 * (sd.profile.passes as f64 / sc.profile.passes as f64) / 2.0);
}

#[test]
fn subset_vi_memory_saving_two_orders() {
    // Paper: 158.7× lower storage than traditional Bayesian methods.
    let spec = NetworkSpec::lenet_reference();
    let subset = memory_footprint(&spec, Method::SubsetVi).total_bits() as f64;
    let (full_vi, ensemble10, _) = neuspin::energy::memory::traditional_baselines(&spec);
    let best_ratio = (ensemble10 as f64 / subset).max(full_vi as f64 / subset);
    assert!(
        (80.0..=400.0).contains(&best_ratio),
        "paper: 158.7×, got {best_ratio:.1}×"
    );
}

#[test]
fn subset_vi_power_saving_tens_of_x() {
    // Paper: up to 70× lower power vs conventional VI. Conventional VI
    // samples one gaussian per *weight* per pass; sub-set VI one per
    // scale entry.
    let spec = NetworkSpec::lenet_reference();
    let weights = spec.weights() as f64;
    let scales = spec.channels() as f64;
    let ratio = weights / scales;
    assert!(
        (30.0..=300.0).contains(&ratio),
        "per-pass gaussian-sampling reduction: {ratio:.0}×"
    );
}

#[test]
fn area_model_tracks_module_hierarchy() {
    let spec = NetworkSpec::lenet_reference();
    let model = AreaModel::default();
    let sd = method_area(&spec, Method::SpinDrop, &model);
    let sp = method_area(&spec, Method::SpatialSpinDrop, &model);
    let sc = method_area(&spec, Method::SpinScaleDrop, &model);
    assert!(sd.stochastic > 10.0 * sp.stochastic);
    assert!(sp.stochastic > sc.stochastic);
}
