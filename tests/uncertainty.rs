//! Cross-crate uncertainty behaviour: Bayesian methods must separate
//! in-distribution from out-of-distribution inputs, and uncertainty
//! must grow with corruption severity.

use neuspin::bayes::{build_mlp, detection_rate_at_95, mc_predict, Method};
use neuspin::data::corrupt::{corrupt_dataset, Corruption};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::data::ood::{textures, uniform_noise};
use neuspin::nn::{fit, Adam, Sequential, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained(method: Method, rng: &mut StdRng) -> Sequential {
    // The binary MLP trains fast enough for integration tests and
    // separates OOD cleanly once properly fitted.
    let data = dataset(2_500, &DigitStyle::default(), rng);
    let mut model = build_mlp(method, 64, 10, rng);
    let mut opt = Adam::new(0.003);
    let cfg = TrainConfig { epochs: 10, batch_size: 64, ..Default::default() };
    fit(&mut model, &data, &mut opt, &cfg, rng);
    model
}

#[test]
fn ood_entropy_exceeds_id_entropy() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut model = trained(Method::SpinDrop, &mut rng);
    let id = dataset(100, &DigitStyle::default(), &mut rng);
    let ood = uniform_noise(100, &mut rng);

    let p_id = mc_predict(&mut model, &id.inputs, 12, &mut rng);
    let p_ood = mc_predict(&mut model, &ood.inputs, 12, &mut rng);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&p_ood.entropy) > 1.5 * mean(&p_id.entropy),
        "OOD entropy {} vs ID {}",
        mean(&p_ood.entropy),
        mean(&p_id.entropy)
    );
}

#[test]
fn detection_rate_substantial_on_noise_probe() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut model = trained(Method::SpinDrop, &mut rng);
    let id = dataset(200, &DigitStyle::default(), &mut rng);
    let ood = uniform_noise(200, &mut rng);
    let p_id = mc_predict(&mut model, &id.inputs, 12, &mut rng);
    let p_ood = mc_predict(&mut model, &ood.inputs, 12, &mut rng);
    // The small MLP separates OOD statistically (AUROC) even when the
    // strict 95 %-TPR operating point is noisy; the CNN-based bench
    // (exp_ood) reports the paper-style detection rates.
    let auroc = neuspin::bayes::auroc(&p_ood.entropy, &p_id.entropy);
    assert!(auroc > 0.6, "uniform-noise AUROC {auroc}");
    let rate = detection_rate_at_95(&p_id.entropy, &p_ood.entropy);
    assert!((0.0..=1.0).contains(&rate), "rate must be a proportion: {rate}");
}

#[test]
fn texture_probe_is_detectable_too() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut model = trained(Method::SpatialSpinDrop, &mut rng);
    let id = dataset(150, &DigitStyle::default(), &mut rng);
    let ood = textures(150, &mut rng);
    let p_id = mc_predict(&mut model, &id.inputs, 12, &mut rng);
    let p_ood = mc_predict(&mut model, &ood.inputs, 12, &mut rng);
    let auroc = neuspin::bayes::auroc(&p_ood.entropy, &p_id.entropy);
    assert!(auroc > 0.7, "texture AUROC {auroc}");
}

#[test]
fn entropy_rises_with_corruption_severity() {
    let mut rng = StdRng::seed_from_u64(24);
    let mut model = trained(Method::SpinDrop, &mut rng);
    let clean = dataset(120, &DigitStyle::default(), &mut rng);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    let e_clean = {
        let p = mc_predict(&mut model, &clean.inputs, 10, &mut rng);
        mean(&p.entropy)
    };
    let heavy = corrupt_dataset(&clean, Corruption::GaussianNoise, 5, &mut rng);
    let e_heavy = {
        let p = mc_predict(&mut model, &heavy.inputs, 10, &mut rng);
        mean(&p.entropy)
    };
    assert!(
        e_heavy > e_clean,
        "severity-5 noise must raise entropy: {e_heavy} vs {e_clean}"
    );
}

#[test]
fn accuracy_degrades_monotonically_ish_with_severity() {
    let mut rng = StdRng::seed_from_u64(25);
    let mut model = trained(Method::SpinDrop, &mut rng);
    let clean = dataset(150, &DigitStyle::default(), &mut rng);
    let p = mc_predict(&mut model, &clean.inputs, 10, &mut rng);
    let acc_clean = p.accuracy(&clean.labels);

    let light = corrupt_dataset(&clean, Corruption::Blur, 1, &mut rng);
    let heavy = corrupt_dataset(&clean, Corruption::Blur, 5, &mut rng);
    let acc_light =
        mc_predict(&mut model, &light.inputs, 10, &mut rng).accuracy(&clean.labels);
    let acc_heavy =
        mc_predict(&mut model, &heavy.inputs, 10, &mut rng).accuracy(&clean.labels);
    assert!(acc_clean >= acc_light - 0.05, "{acc_clean} vs {acc_light}");
    assert!(acc_light > acc_heavy, "blur severity must hurt: {acc_light} vs {acc_heavy}");
}
