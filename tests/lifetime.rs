//! E2E acceptance for the temporal-degradation engine + closed-loop
//! self-healing runtime.
//!
//! A small trained CNN is compiled onto a defective die (0.2 %
//! fabrication hard faults, 2 spare columns), commissioned under a
//! [`Supervisor`], then aged through conductance drift + retention
//! flips until the health ladder runs a full escalation:
//!
//! 1. the degradation walks Healthy → Recalibrate → RemapTier, and the
//!    [`RecoveryEvent`] trail records the cheap tier exactly once
//!    before the full tier;
//! 2. the re-BIST inside the remap tier flags the fabrication defects
//!    and every recovery action carries an energy charge;
//! 3. test accuracy genuinely degrades along the way, and after the
//!    remap tier (repair + scrub + recalibrate + re-baseline) it
//!    returns to the commissioning level with the monitor Healthy.
//!
//! Everything runs from fixed seeds on the fixed-schedule aging
//! streams, so the whole escalation is reproducible bit for bit.

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::core::{
    HardwareConfig, HardwareModel, HealthConfig, HealthPolicy, RecoveryAction, Supervisor,
    SupervisorConfig,
};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::device::AgingConfig;
use neuspin::nn::{fit, Adam, Dataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DRIFT_PER_HOUR: f64 = 0.05;
/// Δ = 33 at 300 K: ~1.7 % of cells lose retention per device-hour.
const THERMAL_STABILITY: f64 = 33.0;
const DEFECT_RATE: f64 = 0.002;

fn arch() -> ArchConfig {
    ArchConfig { c1: 4, c2: 8, hidden: 32, ..ArchConfig::default() }
}

fn trained_supervisor() -> (Supervisor, Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(1);
    let style = DigitStyle::easy();
    let train = dataset(1_200, &style, &mut rng);

    let mut model = build_cnn(Method::SpinDrop, &arch(), &mut rng);
    let mut opt = Adam::new(0.004);
    let cfg = TrainConfig { epochs: 6, batch_size: 64, ..Default::default() };
    fit(&mut model, &train, &mut opt, &cfg, &mut rng);
    let calib = dataset(128, &style, &mut rng);
    let test = dataset(120, &style, &mut rng);

    let hw_config = HardwareConfig {
        crossbar: neuspin::cim::CrossbarConfig {
            defect_rates: neuspin::device::DefectRates::uniform(DEFECT_RATE),
            ..neuspin::cim::CrossbarConfig::default()
        },
        spare_cols: 2,
        passes: 4,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut model, Method::SpinDrop, &arch(), &hw_config, &mut rng);
    hw.enable_aging(&AgingConfig {
        seed: 0xA9E5,
        drift_rate: DRIFT_PER_HOUR,
        thermal_stability: THERMAL_STABILITY,
        ..AgingConfig::default()
    });
    let config = SupervisorConfig {
        health: HealthConfig { window: 1, dwell: 1, ..HealthConfig::default() },
        ..SupervisorConfig::default()
    };
    (Supervisor::new(hw, config), calib, test)
}

#[test]
fn full_escalation_recovers_the_defective_die() {
    let (mut sup, calib, test) = trained_supervisor();
    let baseline = sup.commission(calib.inputs.clone(), &test.inputs);
    let t0 = baseline.accuracy(&test.labels);
    assert!(t0 >= 0.6, "the trained die must start usable, got {t0}");

    // Age until the ladder has climbed through RemapTier.
    let mut policies = Vec::new();
    let mut accuracies = Vec::new();
    for _ in 0..8 {
        let report = sup.step(&test.inputs, 1.0);
        policies.push(report.policy);
        accuracies.push(report.predictive.accuracy(&test.labels));
        if report.actions.contains(&RecoveryAction::RemapTier) {
            break;
        }
    }
    assert_eq!(policies[0], HealthPolicy::Healthy, "a freshly commissioned die is healthy");
    assert!(
        policies.contains(&HealthPolicy::Recalibrate),
        "the ladder must pass through the cheap tier first, got {policies:?}"
    );
    assert_eq!(
        *policies.last().unwrap(),
        HealthPolicy::RemapTier,
        "degradation must eventually force the full tier, got {policies:?}"
    );
    let worst = accuracies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        worst < t0 - 0.10,
        "degradation should cost real accuracy before recovery (t0 {t0}, worst {worst})"
    );

    // The structured trail: the cheap tier exactly once before the
    // full tier, in step order, everything energy-charged.
    let trail: Vec<RecoveryAction> = sup.events().iter().map(|e| e.action).collect();
    assert_eq!(
        trail,
        vec![RecoveryAction::Recalibrate, RecoveryAction::RemapTier],
        "one cheap-tier action, then the full tier"
    );
    assert!(
        sup.events().windows(2).all(|w| w[0].step < w[1].step),
        "recovery events must be ordered by step"
    );
    let remap = sup.events().last().unwrap();
    assert!(
        remap.flagged > 0,
        "re-BIST inside the remap tier must flag the fabrication defects"
    );
    for event in sup.events() {
        assert!(
            event.energy.0 > 0.0,
            "{} at step {} must be charged to the energy model",
            event.action,
            event.step
        );
    }

    // Post-recovery: repaired, scrubbed, recalibrated, re-baselined —
    // the die reports Healthy and scores like its commissioned self.
    let after = sup.step(&test.inputs, 1.0);
    let recovered = after.predictive.accuracy(&test.labels);
    assert_eq!(after.policy, HealthPolicy::Healthy, "recovery must re-arm the monitor");
    assert!(
        recovered > worst,
        "recovered accuracy {recovered} must beat the degraded floor {worst}"
    );
    // The recovered die keeps aging (the measurement itself sits one
    // device-hour past the repair), so allow a modest gap to t = 0.
    assert!(
        recovered >= t0 - 0.15,
        "recovered accuracy {recovered} should be back near commissioning accuracy {t0}"
    );
}

#[test]
fn escalation_trajectory_is_reproducible() {
    let run = || {
        let (mut sup, calib, test) = trained_supervisor();
        sup.commission(calib.inputs.clone(), &test.inputs);
        let mut sig = Vec::new();
        for _ in 0..5 {
            let r = sup.step(&test.inputs, 1.0);
            sig.push((r.policy, r.predictive.mean_probs.as_slice().to_vec()));
        }
        let trail: Vec<(RecoveryAction, usize, usize)> =
            sup.events().iter().map(|e| (e.action, e.step, e.flagged)).collect();
        (sig, trail)
    };
    assert_eq!(run(), run(), "the whole lifetime escalation must be seed-deterministic");
}
