//! Quickstart: train a Bayesian binary network (SpinDrop) on the
//! synthetic digit task and inspect its uncertainty estimates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neuspin::bayes::{build_mlp, eval_predict, mc_predict, Method};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::data::ood::uniform_noise;
use neuspin::nn::{evaluate, fit, Adam, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let style = DigitStyle::default();

    println!("== NeuSpin quickstart: SpinDrop Bayesian binary MLP ==\n");

    // 1. Data: procedurally generated 16×16 digit images.
    let train = dataset(3_000, &style, &mut rng);
    let test = dataset(600, &style, &mut rng);
    println!("train: {} images, test: {} images", train.len(), test.len());

    // 2. A binary MLP with per-neuron MC-dropout (the SpinDrop method).
    let mut model = build_mlp(Method::SpinDrop, 64, 10, &mut rng);
    println!("model: {}\n", model.summary());

    // 3. Train.
    let mut opt = Adam::new(0.003);
    let cfg = TrainConfig { epochs: 12, batch_size: 64, verbose: true, ..Default::default() };
    fit(&mut model, &train, &mut opt, &cfg, &mut rng);

    // 4. Deterministic vs Monte-Carlo accuracy.
    let det_acc = evaluate(&mut model, &test, &mut rng);
    let mc = mc_predict(&mut model, &test.inputs, 24, &mut rng);
    println!("\ndeterministic accuracy: {:.2}%", 100.0 * det_acc);
    println!("MC (24 passes) accuracy: {:.2}%", 100.0 * mc.accuracy(&test.labels));

    // 5. Uncertainty: in-distribution vs out-of-distribution inputs.
    let ood = uniform_noise(600, &mut rng);
    let mc_ood = mc_predict(&mut model, &ood.inputs, 24, &mut rng);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\npredictive entropy (nats):");
    println!("  in-distribution digits: {:.3}", mean(&mc.entropy));
    println!("  uniform-noise OOD:      {:.3}", mean(&mc_ood.entropy));
    println!("mutual information (epistemic):");
    println!("  in-distribution digits: {:.4}", mean(&mc.mutual_information));
    println!("  uniform-noise OOD:      {:.4}", mean(&mc_ood.mutual_information));

    // A deterministic pass has no epistemic signal at all.
    let det = eval_predict(&mut model, &test.inputs, &mut rng);
    println!("\n(single deterministic pass MI: {:.6} — no epistemic signal)",
        mean(&det.mutual_information));

    println!("\nThe Bayesian network knows when it doesn't know: OOD inputs get");
    println!("markedly higher entropy, which is what the NeuSpin hardware uses");
    println!("to flag unreliable predictions at the edge.");
}
