//! Self-healing under in-field drift (§III-A4): compare a
//! batch-norm-based Bayesian method against inverted normalization with
//! affine dropout when the crossbar conductances drift after
//! calibration.
//!
//! ```sh
//! cargo run --release --example self_healing
//! ```

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::core::{reliability_base, sweep, SweepConfig, SweepKind};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::nn::{fit, Adam, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let style = DigitStyle::default();
    let arch = ArchConfig::default();

    println!("== NeuSpin self-healing: drift robustness ==\n");

    let train = dataset(3_000, &style, &mut rng);
    let calib = dataset(200, &style, &mut rng);
    let test = dataset(300, &style, &mut rng);

    let severities = [0.0, 0.15, 0.3, 0.45, 0.6];
    let config = reliability_base();

    println!("post-calibration common-mode conductance drift (weights × (1−s)):\n");
    println!("{:<28} {}", "method", severities.map(|s| format!("s={s:<5}")).join(" "));

    for method in [Method::SpinDrop, Method::AffineDropout] {
        let mut r = StdRng::seed_from_u64(1234);
        let mut model = build_cnn(method, &arch, &mut r);
        let mut opt = Adam::new(0.003);
        let cfg = TrainConfig { epochs: 8, batch_size: 64, ..Default::default() };
        fit(&mut model, &train, &mut opt, &cfg, &mut r);

        let points = sweep(
            &mut model,
            method,
            &arch,
            &config,
            &SweepConfig::new(SweepKind::Drift, severities.to_vec(), 777),
            &calib,
            &test,
        );
        let row: Vec<String> =
            points.iter().map(|p| format!("{:>5.1}%", 100.0 * p.accuracy)).collect();
        println!("{:<28} {}", method.to_string(), row.join(" "));
    }

    println!("\nBatch-norm methods rely on calibrated statistics that drift");
    println!("invalidates; inverted normalization re-whitens every sample on");
    println!("the fly, absorbing the conductance shift — the self-healing");
    println!("property the paper reports as up to ~55% accuracy recovery.");
}
