//! Uncertainty landscape on the two-moons dataset: trains a small
//! Bayesian MLP and renders the predictive-entropy field as ASCII art —
//! the textbook picture of "the model knows where it hasn't seen data".
//!
//! ```sh
//! cargo run --release --example uncertainty_map
//! ```

use neuspin::bayes::{mc_predict, ViScale};
use neuspin::data::moons::two_moons;
use neuspin::nn::{cross_entropy, Adam, Linear, Mode, Optimizer, Relu, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GRID: usize = 56;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    println!("== Uncertainty landscape: two moons, VI-scale Bayesian MLP ==\n");

    let data = two_moons(400, 0.08, &mut rng);

    // A small MLP with a variational scale layer (sub-set VI in 2-D).
    let mut model = Sequential::new();
    model.push(Linear::new(2, 32, &mut rng));
    model.push(Relu::new());
    model.push(ViScale::new(32));
    model.push(Linear::new(32, 16, &mut rng));
    model.push(Relu::new());
    model.push(Linear::new(16, 2, &mut rng));

    let mut opt = Adam::new(0.01);
    for epoch in 0..200 {
        model.zero_grad();
        let logits = model.forward(&data.inputs, Mode::Train, &mut rng);
        let (loss, grad) = cross_entropy(&logits, &data.labels);
        let _ = model.reg_loss(1e-4); // KL term
        model.backward(&grad);
        opt.step(&mut model);
        if epoch % 50 == 0 {
            println!("epoch {epoch:>3}: loss {loss:.4}");
        }
    }

    // Evaluate predictive entropy over a grid covering the moons.
    let (x_min, x_max, y_min, y_max) = (-1.8f32, 2.8, -1.3, 1.8);
    let mut grid = Vec::with_capacity(GRID * GRID * 2);
    for gy in 0..GRID {
        for gx in 0..GRID {
            grid.push(x_min + (x_max - x_min) * gx as f32 / (GRID - 1) as f32);
            grid.push(y_max - (y_max - y_min) * gy as f32 / (GRID - 1) as f32);
        }
    }
    let grid_tensor = Tensor::from_vec(grid, &[GRID * GRID, 2]);
    let pred = mc_predict(&mut model, &grid_tensor, 24, &mut rng);

    // Render: entropy as background shade, training points as 0/1.
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max_h = pred.entropy.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let mut canvas: Vec<Vec<char>> = (0..GRID)
        .map(|gy| {
            (0..GRID)
                .map(|gx| {
                    let h = pred.entropy[gy * GRID + gx] / max_h;
                    RAMP[(h * (RAMP.len() - 1) as f64).round() as usize] as char
                })
                .collect()
        })
        .collect();
    for i in 0..data.len() {
        let (px, py) = (data.inputs[i * 2], data.inputs[i * 2 + 1]);
        let gx = ((px - x_min) / (x_max - x_min) * (GRID - 1) as f32).round() as i64;
        let gy = ((y_max - py) / (y_max - y_min) * (GRID - 1) as f32).round() as i64;
        if (0..GRID as i64).contains(&gx) && (0..GRID as i64).contains(&gy) {
            canvas[gy as usize][gx as usize] = if data.labels[i] == 0 { 'o' } else { 'x' };
        }
    }
    println!("\npredictive entropy (dark = confident, bright = uncertain);");
    println!("'o'/'x' = training data of the two classes:\n");
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("\nThe bright ridge traces the class boundary and the regions the");
    println!("model has never seen — exactly the signal a safety-critical edge");
    println!("device uses to defer to a human or a bigger model.");
}
