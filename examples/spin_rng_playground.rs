//! Device-level playground: the stochastic MTJ as a tunable random
//! number generator — switching-probability curves, calibration under
//! process variation, and the cost of one random bit.
//!
//! ```sh
//! cargo run --release --example spin_rng_playground
//! ```

use neuspin::device::{
    DeviceEnergy, MtjParams, SpinRng, SwitchingModel, VariationModel, VariedParams,
};
use neuspin::energy::Joules;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let params = MtjParams::default();
    let model = SwitchingModel::from_params(&params);

    println!("== The stochastic MTJ as a Bernoulli sampler ==\n");

    // 1. The switching-probability sigmoid P_sw(I) at fixed pulse width.
    println!("-- P_sw vs write current (10 ns pulse, Ic = {:.0} µA) --", params.critical_current * 1e6);
    for frac in [0.70, 0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10] {
        let i = frac * params.critical_current;
        let p = model.probability(i, params.pulse_width);
        let bar = "#".repeat((p * 40.0) as usize);
        println!("  I = {:.2}·Ic  P_sw = {p:>8.5}  {bar}", frac);
    }

    // 2. Inverse calibration: what current gives p = 0.5?
    let i_half = model.current_for_probability(0.5, params.pulse_width);
    println!(
        "\ncalibration: p = 0.5 needs I = {:.2} µA ({:.3}·Ic)",
        i_half * 1e6,
        i_half / params.critical_current
    );

    // 3. Device variation turns the calibrated p into a random variable.
    println!("\n-- realized p of 12 fabricated devices calibrated for p = 0.3 --");
    let corner = VariedParams::new(params, VariationModel::uniform(0.08));
    for d in 0..12 {
        let mut module = SpinRng::new(corner, &mut rng);
        let report = module.calibrate_nominal(0.3);
        let measured = module.measure_p(2_000, &mut rng);
        println!(
            "  device {d:>2}: realized p = {:.3}, measured (2000 bits) = {:.3}",
            report.realized_p, measured
        );
    }

    // 4. Closed-loop calibration cancels the variation.
    println!("\n-- closed-loop (measured) calibration on one skewed device --");
    let mut module = SpinRng::new(corner, &mut rng);
    let open = module.calibrate_nominal(0.3);
    let closed = module.calibrate_measured(0.3, 500, 0.01, 25, &mut rng);
    println!("  open loop:   |p − 0.3| = {:.4}", open.abs_error());
    println!(
        "  closed loop: |p − 0.3| = {:.4} (spent {} measurement bits)",
        closed.abs_error(),
        closed.measurement_bits
    );

    // 5. What a random bit costs.
    let e = DeviceEnergy::default();
    println!("\n-- energy per primitive --");
    println!("  cell read          {}", Joules(e.read));
    println!("  SOT write          {}", Joules(e.write_sot));
    println!("  RNG bit (SET+read+RESET) {}", Joules(e.rng_bit()));
    println!("\nOne random bit costs ~{:.0}× a cell read — why NeuSpin's methods", e.rng_bit() / e.read);
    println!("fight to reduce the number of RNG draws per forward pass.");
}
