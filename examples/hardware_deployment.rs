//! End-to-end hardware deployment: train a Bayesian CNN, compile it
//! onto the spintronic CIM simulator, calibrate, and run
//! hardware-in-the-loop inference with full energy accounting.
//!
//! ```sh
//! cargo run --release --example hardware_deployment
//! ```

use neuspin::bayes::{build_cnn, ArchConfig, Method};
use neuspin::cim::{map_conv, map_linear, ArrayLimit, ConvMapping};
use neuspin::core::{HardwareConfig, HardwareModel};
use neuspin::data::digits::{dataset, DigitStyle};
use neuspin::device::{MtjParams, VariationModel, VariedParams};
use neuspin::nn::{fit, Adam, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let style = DigitStyle::default();
    let arch = ArchConfig::default();
    let method = Method::SpatialSpinDrop;

    println!("== NeuSpin hardware deployment: {method} ==\n");

    // 1. Train the Bayesian binary CNN in software.
    let train = dataset(3_000, &style, &mut rng);
    let test = dataset(400, &style, &mut rng);
    let mut model = build_cnn(method, &arch, &mut rng);
    let mut opt = Adam::new(0.003);
    let cfg = TrainConfig { epochs: 8, batch_size: 64, verbose: true, ..Default::default() };
    fit(&mut model, &train, &mut opt, &cfg, &mut rng);

    // 2. Show how the layers map onto physical crossbars (Fig. 1).
    println!("\n-- crossbar mapping (strategy 1, unfolded columns) --");
    let limit = ArrayLimit::default();
    for (name, report) in [
        ("conv1", map_conv(1, arch.c1, 3, ConvMapping::UnfoldedColumns, &limit)),
        ("conv2", map_conv(arch.c1, arch.c2, 3, ConvMapping::UnfoldedColumns, &limit)),
        ("fc1", map_linear(arch.flat_features(), arch.hidden, &limit)),
        ("fc2", map_linear(arch.hidden, arch.classes, &limit)),
    ] {
        println!(
            "  {name}: {} array(s) {:?}, {} cells, dropout modules: {} (SpinDrop) vs {} (spatial)",
            report.crossbar_count,
            report.crossbar_shapes,
            report.cells,
            report.spindrop_modules,
            report.spatial_modules,
        );
    }

    // 3. Compile onto hardware with a realistic process corner.
    let config = HardwareConfig {
        crossbar: neuspin::cim::CrossbarConfig {
            corner: VariedParams::new(MtjParams::default(), VariationModel::typical()),
            read_noise: 0.01,
            adc_bits: Some(6),
            ..neuspin::cim::CrossbarConfig::default()
        },
        passes: 16,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut model, method, &arch, &config, &mut rng);
    println!("\n{}", hw.summary());

    // 4. Calibrate the digital norm statistics on the hardware itself.
    let (calib, _) = train.gather(&(0..256).collect::<Vec<_>>());
    hw.calibrate(&calib, 2, &mut rng);
    println!("calibrated norm statistics on 256 images");

    // 5. Hardware-in-the-loop Bayesian inference.
    hw.reset_counter();
    let pred = hw.predict(&test.inputs, &mut rng);
    let acc = pred.accuracy(&test.labels);
    println!("\nhardware MC accuracy ({} passes): {:.2}%", hw.passes(), 100.0 * acc);

    // 6. Energy accounting.
    let breakdown = hw.energy_breakdown();
    let per_image = hw.energy().0 / test.len() as f64;
    println!("\n-- energy for {} images × {} passes --", test.len(), hw.passes());
    for (label, joules) in breakdown.entries() {
        println!("  {label:<12} {joules}");
    }
    println!("  {:<12} {}", "total", breakdown.total());
    println!("  per image:   {}", neuspin::energy::Joules(per_image));
}
