//! # NeuSpin — a reliable edge neuromorphic system based on spintronics
//!
//! A full-stack reproduction of *"NeuSpin: Design of a Reliable Edge
//! Neuromorphic System Based on Spintronics for Green AI"* (DATE 2024):
//! Bayesian binary neural networks co-designed with a simulated
//! spintronic computation-in-memory (CIM) substrate.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`device`] | MTJ physics, stochastic switching, variation, defects, SpinRng, multi-level cells |
//! | [`cim`] | crossbars, bit-cells, decoders, dropout modules, mapping strategies |
//! | [`nn`] | tensor + backprop framework: binary layers, norms, dropout family, LSTM |
//! | [`bayes`] | MC prediction, method zoo, sub-set VI, SpinBayes, uncertainty metrics |
//! | [`data`] | synthetic digits, corruptions, OOD probes, time series, segmentation |
//! | [`energy`] | per-event energy, area, and memory models (Table I machinery) |
//! | [`core`] | the co-design runtime: compile → calibrate → hardware-in-the-loop predict |
//!
//! ## Quickstart
//!
//! ```
//! use neuspin::bayes::{build_mlp, mc_predict, Method};
//! use neuspin::data::digits::{dataset, DigitStyle};
//! use neuspin::nn::{fit, Adam, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let train = dataset(400, &DigitStyle::default(), &mut rng);
//!
//! // A Bayesian binary MLP with per-neuron MC-dropout (SpinDrop).
//! let mut model = build_mlp(Method::SpinDrop, 32, 10, &mut rng);
//! let mut opt = Adam::new(0.003);
//! let cfg = TrainConfig { epochs: 2, batch_size: 64, ..Default::default() };
//! fit(&mut model, &train, &mut opt, &cfg, &mut rng);
//!
//! // Monte-Carlo prediction with uncertainty.
//! let pred = mc_predict(&mut model, &train.inputs, 8, &mut rng);
//! assert_eq!(pred.mean_probs.shape()[1], 10);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every table and
//! figure of the paper.

pub use neuspin_bayes as bayes;
pub use neuspin_cim as cim;
pub use neuspin_core as core;
pub use neuspin_data as data;
pub use neuspin_device as device;
pub use neuspin_energy as energy;
pub use neuspin_nn as nn;
